module Block = Brdb_ledger.Block
module Clock = Brdb_sim.Clock
module Cpu = Brdb_sim.Cpu
module SSet = Set.Make (String)

(* Delivered blocks carried in a VIEW-CHANGE message below the sender's
   frontier: lets a new primary (or a straggler) re-anchor its chain and
   catch up without a separate fetch protocol. *)
let vc_tail = 8

type phase_state = {
  mutable block : Block.t option;
  mutable vview : int;  (** view in which the current votes are counted *)
  mutable prepares : SSet.t;
  mutable commits : SSet.t;
  mutable prepare_sent : bool;
  mutable commit_sent : bool;
  mutable delivered : bool;
}

type t = {
  net : Msg.Net.net;
  name : string;
  names : string list;
  others : string list;
  identity : Brdb_crypto.Identity.t;
  clock : Clock.t;
  cpu : Cpu.t;
  cutter : Cutter.t;
  assembler : Assembler.t;
  block_timeout : float;
  view_timeout : float;
  tx_cpu : float;
  recv_cpu : float;
  send_cpu : float;
  block_cpu : float;
  peers : string list;
  f : int;
  states : (int, phase_state) Hashtbl.t;
  mutable next_deliver : int;
  mutable delivered_count : int;
  mutable activity : int;
      (** liveness evidence: bumps on every delivery and on every
          proposal seen from the current primary — a slow-but-streaming
          primary must not be voted out (the watchdog compares this, not
          just [delivered_count]) *)
  mutable top_seq : int;  (** highest sequence number with a known block *)
  (* view-change machinery (§4.4 / PBFT): [view] is the active view,
     [pending_view > view] while this replica has voted to move on and
     stopped accepting old-view protocol messages. *)
  mutable view : int;
  mutable pending_view : int;
  mutable view_changes : int;
  mutable crashed : bool;
  (* target view -> sender -> (last_delivered, entries) *)
  vc_votes : (int, (string, int * (int * Block.t) list) Hashtbl.t) Hashtbl.t;
  (* latest NEW-VIEW seen (sent or received): re-sent to stragglers whose
     VIEW-CHANGE asks for a view we already completed *)
  mutable last_new_view : Msg.t option;
  mutable vc_armed : bool;
  mutable vc_epoch : int;
}

let n_of t = List.length t.names

let primary_of t v = List.nth t.names (v mod n_of t)

let is_primary t = String.equal t.name (primary_of t t.view)

let in_view_change t = t.pending_view > t.view

let state t seq =
  match Hashtbl.find_opt t.states seq with
  | Some s -> s
  | None ->
      let s =
        {
          block = None;
          vview = t.view;
          prepares = SSet.empty;
          commits = SSet.empty;
          prepare_sent = false;
          commit_sent = false;
          delivered = false;
        }
      in
      Hashtbl.replace t.states seq s;
      s

let send_to t dst msg =
  ignore (Msg.Net.send t.net ~src:t.name ~dst ~size_bytes:(Msg.size msg) msg)

let send_all t msg =
  (* Serialization cost per recipient on the sender's CPU. *)
  Cpu.run t.cpu
    ~cost:(t.send_cpu *. float_of_int (List.length t.others))
    (fun () -> List.iter (fun dst -> send_to t dst msg) t.others)

(* Undelivered work this replica knows about — what the view-change
   watchdog guards. *)
let work_outstanding t =
  Cutter.pending t.cutter > 0 || t.next_deliver <= t.top_seq

(* --- view-change watchdog -------------------------------------------------- *)

(* Forward declarations resolved below (the protocol is mutually
   recursive: timers start view changes, view changes re-propose blocks,
   proposals re-arm timers). *)
let rec ensure_vc_timer t =
  if
    (not t.crashed) && t.view_timeout > 0.
    && (not t.vc_armed)
    && not (String.equal t.name (primary_of t t.view))
  then begin
    t.vc_armed <- true;
    t.vc_epoch <- t.vc_epoch + 1;
    let epoch = t.vc_epoch in
    let snapshot = t.activity in
    let view = t.view in
    Clock.schedule t.clock ~delay:t.view_timeout (fun () ->
        if t.vc_epoch = epoch && not t.crashed then begin
          t.vc_armed <- false;
          if work_outstanding t then begin
            (* No delivery since arming: the primary is crashed or
               silent — vote it out. An already-pending change that also
               stalled (the next primary is down too) escalates. *)
            if t.activity = snapshot && t.view = view then
              send_view_change t (max t.view t.pending_view + 1);
            ensure_vc_timer t
          end
        end)
  end

and vc_table t v =
  match Hashtbl.find_opt t.vc_votes v with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.vc_votes v tbl;
      tbl

(* The blocks this replica can vouch for: delivered tail (chain anchor +
   straggler catch-up) and prepared-but-undelivered in-flight blocks.
   Quorum intersection guarantees any block delivered anywhere appears in
   at least one of the 2f+1 collected votes. Unprepared blocks are
   abandoned — their transactions are still pending in every replica's
   cutter and get re-cut by the new primary. *)
and vc_entries t =
  let lo = max 1 (t.next_deliver - vc_tail) in
  let rec collect seq acc =
    if seq < lo then acc
    else
      let acc =
        match Hashtbl.find_opt t.states seq with
        | Some ({ block = Some b; _ } as s)
          when s.delivered || SSet.cardinal s.prepares >= 2 * t.f ->
            (seq, b) :: acc
        | _ -> acc
      in
      collect (seq - 1) acc
  in
  collect t.top_seq []

and send_view_change t v =
  if v > t.pending_view then begin
    t.pending_view <- v;
    let last = t.next_deliver - 1 in
    let entries = vc_entries t in
    Hashtbl.replace (vc_table t v) t.name (last, entries);
    send_all t (Msg.Bft (Msg.View_change { view = v; last_delivered = last; entries }));
    maybe_become_primary t v
  end

and maybe_become_primary t v =
  if v > t.view && String.equal t.name (primary_of t v) then begin
    let votes = vc_table t v in
    if Hashtbl.length votes >= (2 * t.f) + 1 then become_primary t v votes
  end

(* Enter view [v]: every completed change supersedes any in-flight hope
   for a different view, so old-view message acceptance resumes. *)
and enter_view t v =
  if v > t.view then begin
    t.view <- v;
    t.pending_view <- v;
    t.view_changes <- t.view_changes + 1;
    let stale = Hashtbl.fold (fun k _ acc -> if k <= v then k :: acc else acc) t.vc_votes [] in
    List.iter (Hashtbl.remove t.vc_votes) stale;
    (* restart the watchdog against the new primary *)
    t.vc_epoch <- t.vc_epoch + 1;
    t.vc_armed <- false;
    relay_backlog t;
    if work_outstanding t then ensure_vc_timer t
  end

(* Hand our stashed backlog to the current primary (it deduplicates):
   transactions the dead primary took to its grave get re-proposed as
   long as any live replica stashed them. *)
and relay_backlog t =
  if not (is_primary t) then begin
    let txs = Cutter.pending_txs t.cutter in
    if txs <> [] then
      Cpu.run t.cpu
        ~cost:(t.send_cpu *. float_of_int (List.length txs))
        (fun () ->
          let dst = primary_of t t.view in
          List.iter (fun tx -> send_to t dst (Msg.Client_tx tx)) txs)
  end

(* Accept block [block] at [seq] proposed in [view] (a PRE-PREPARE or a
   NEW-VIEW re-proposal). A higher view replaces whatever an abandoned
   old-view proposal left behind; delivered slots are final and instead
   echo a PREPARE so a lagging primary can re-form its quorum. *)
and on_block t ~view seq block =
  if view = t.view && not (in_view_change t) then begin
    let s = state t seq in
    if s.delivered then begin
      match s.block with
      | Some b when String.equal b.Block.hash block.Block.hash ->
          send_all t (Msg.Bft (Msg.Prepare { view; seq; digest = b.Block.hash }))
      | _ -> ()
    end
    else begin
      let fresh = s.block = None || view > s.vview in
      let same =
        match s.block with
        | Some b -> String.equal b.Block.hash block.Block.hash
        | None -> false
      in
      if fresh then begin
        s.block <- Some block;
        s.vview <- view;
        s.prepares <- SSet.singleton t.name;
        s.commits <- SSet.empty;
        s.prepare_sent <- true;
        s.commit_sent <- false;
        if seq > t.top_seq then t.top_seq <- seq
      end;
      if fresh || (same && s.vview = view) then begin
        (* re-sending on a duplicate PRE-PREPARE lets quorums re-form
           after a crash wiped the receiver off the network mid-phase *)
        send_all t (Msg.Bft (Msg.Prepare { view; seq; digest = block.Block.hash }));
        if not (is_primary t) then ensure_vc_timer t;
        maybe_commit t seq;
        deliver_ready t
      end
    end
  end

and maybe_commit t seq =
  let s = state t seq in
  if
    s.block <> None && s.prepare_sent
    && (not s.commit_sent)
    && SSet.cardinal s.prepares >= 2 * t.f
  then begin
    s.commit_sent <- true;
    s.commits <- SSet.add t.name s.commits;
    (match s.block with
    | Some b ->
        send_all t
          (Msg.Bft (Msg.Commit_vote { view = s.vview; seq; digest = b.Block.hash }))
    | None -> ());
    deliver_ready t
  end

and deliver_ready t =
  let rec loop () =
    match Hashtbl.find_opt t.states t.next_deliver with
    | Some ({ block = Some b; delivered = false; _ } as s)
      when SSet.cardinal s.commits >= 2 * t.f ->
        s.delivered <- true;
        t.delivered_count <- t.delivered_count + 1;
        t.activity <- t.activity + 1;
        ignore
          (Cutter.drop t.cutter
             ~ids:(List.map (fun (tx : Block.tx) -> tx.Block.tx_id) b.Block.txs));
        let signed = Block.sign b t.identity in
        List.iter (fun peer -> send_to t peer (Msg.Block_deliver signed)) t.peers;
        t.next_deliver <- t.next_deliver + 1;
        loop ()
    | _ -> ()
  in
  loop ()

and propose_block t txs =
  Cpu.run t.cpu ~cost:t.block_cpu (fun () ->
      let b = Assembler.make t.assembler txs in
      let seq = b.Block.height in
      send_all t (Msg.Bft (Msg.Pre_prepare { view = t.view; seq; block = b }));
      on_block t ~view:t.view seq b)

and arm_timer t =
  let epoch = Cutter.epoch t.cutter in
  let view = t.view in
  Clock.schedule t.clock ~delay:t.block_timeout (fun () ->
      if
        (not t.crashed) && t.view = view && is_primary t
        && Cutter.epoch t.cutter = epoch
      then
        match Cutter.take_batch t.cutter with
        | Some txs -> propose_block t txs
        | None -> ())

(* Drain the backlog a new primary inherited across the view change:
   full blocks immediately, a partial batch on the cut timer. *)
and drain_backlog t =
  while is_primary t && Cutter.pending t.cutter >= Cutter.capacity t.cutter do
    match Cutter.take_batch t.cutter with
    | Some txs -> propose_block t txs
    | None -> ()
  done;
  if is_primary t && Cutter.pending t.cutter > 0 then arm_timer t

(* 2f+1 replicas voted this replica primary of [v]. Merge their
   certified blocks with ours (deterministically: voters in name order),
   re-anchor the assembler above the highest contiguous sequence number,
   broadcast NEW-VIEW, and re-run the three-phase protocol for every
   in-flight block so delivery resumes. *)
and become_primary t v votes =
  enter_view t v;
  let merged : (int, Block.t) Hashtbl.t = Hashtbl.create 32 in
  let add (seq, b) = if not (Hashtbl.mem merged seq) then Hashtbl.replace merged seq b in
  List.iter add (vc_entries t);
  let my_last = t.next_deliver - 1 in
  let min_last = ref my_last and max_last = ref my_last in
  Hashtbl.fold (fun sender vote acc -> (sender, vote) :: acc) votes []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (_, (last, entries)) ->
         if last < !min_last then min_last := last;
         if last > !max_last then max_last := last;
         List.iter add entries);
  (* Anything delivered anywhere is certified in [merged] (quorum
     intersection), so the run ending at the delivered frontier is
     contiguous; blocks beyond the first hole above it were never
     delivered and are abandoned (their txs are still pending). *)
  let top = ref !max_last in
  while Hashtbl.mem merged (!top + 1) do
    incr top
  done;
  (* If our own frontier sits below a hole we can never fill from here
     (delivered elsewhere, outside every tail window), skip it: our
     database peers recover the missing heights through §3.6 block fetch
     from other peers. *)
  if t.next_deliver <= !max_last && not (Hashtbl.mem merged t.next_deliver)
  then begin
    let low = ref !max_last in
    while Hashtbl.mem merged (!low - 1) do
      decr low
    done;
    if !low > t.next_deliver then t.next_deliver <- !low
  end;
  let anchor_hash =
    if !top < 1 then Block.genesis_hash
    else
      match Hashtbl.find_opt merged !top with
      | Some b -> b.Block.hash
      | None -> (
          match Hashtbl.find_opt t.states !top with
          | Some { block = Some b; _ } -> b.Block.hash
          | _ -> Block.genesis_hash)
  in
  Assembler.reset t.assembler ~next_height:(!top + 1) ~prev_hash:anchor_hash;
  (* every certified tx is accounted for; nothing pending may double-order *)
  Hashtbl.iter
    (fun _ (b : Block.t) ->
      ignore
        (Cutter.drop t.cutter
           ~ids:(List.map (fun (tx : Block.tx) -> tx.Block.tx_id) b.Block.txs)))
    merged;
  let entries =
    let rec collect seq acc =
      if seq <= !min_last then acc
      else
        match Hashtbl.find_opt merged seq with
        | Some b -> collect (seq - 1) ((seq, b) :: acc)
        | None -> collect (seq - 1) acc
    in
    collect !top []
  in
  let nv = Msg.Bft (Msg.New_view { view = v; entries }) in
  t.last_new_view <- Some nv;
  send_all t nv;
  adopt_entries t v entries;
  drain_backlog t

(* Process NEW-VIEW entries (also run locally by the new primary): each
   is an implicit PRE-PREPARE in the new view. *)
and adopt_entries t v entries =
  List.iter (fun (seq, b) -> on_block t ~view:v seq b) entries;
  (match List.rev entries with
  | (hi, _) :: _ ->
      (* same gap-skip as the primary: a straggler whose next needed
         sequence number predates every carried entry jumps to the start
         of the contiguous run (its peers fetch the skipped heights) *)
      let low = ref hi in
      while List.mem_assoc (!low - 1) entries do
        decr low
      done;
      if
        t.next_deliver < !low
        && (not (List.mem_assoc t.next_deliver entries))
        && not
             (match Hashtbl.find_opt t.states t.next_deliver with
             | Some { block = Some _; _ } -> true
             | _ -> false)
      then t.next_deliver <- !low
  | [] -> ());
  deliver_ready t

let handle t ~src msg =
  match msg with
  | Msg.Client_tx tx ->
      (* Client ingestion is cheap (batched); the protocol messages below
         carry the real per-orderer cost. *)
      Cpu.run t.cpu ~cost:t.tx_cpu (fun () ->
          if is_primary t then (
            match Cutter.add t.cutter tx with
            | Cutter.Cut txs -> propose_block t txs
            | Cutter.First -> arm_timer t
            | Cutter.Buffered | Cutter.Duplicate -> ())
          else begin
            (* Stash a copy (the view-change backlog, re-relayed to the
               next primary if this one dies with it) and relay to the
               primary — once: replica-to-replica relays are not
               re-forwarded, so a stale sender cannot start a loop. *)
            (match Cutter.stash t.cutter tx with
            | `Stashed -> ensure_vc_timer t
            | `Duplicate -> ());
            if not (List.mem src t.names) then
              send_to t (primary_of t t.view) msg
          end)
  | Msg.Bft (Msg.Pre_prepare { view; seq; block }) ->
      Cpu.run t.cpu ~cost:(t.recv_cpu +. (t.block_cpu /. 4.)) (fun () ->
          (* A proposal from the legitimate primary of a later view is
             proof the cluster moved on while we were down: adopt it. *)
          if
            view > t.view
            && view >= t.pending_view
            && String.equal src (primary_of t view)
          then enter_view t view;
          if view = t.view && String.equal src (primary_of t view) then begin
            t.activity <- t.activity + 1;
            on_block t ~view seq block
          end)
  | Msg.Bft (Msg.Prepare { view; seq; digest }) ->
      Cpu.run t.cpu ~cost:t.recv_cpu (fun () ->
          if view = t.view && not (in_view_change t) then begin
            let s = state t seq in
            if s.delivered then (
              (* echo our commit so a replica re-running the protocol for
                 an already-final slot can reach its quorum *)
              match s.block with
              | Some b when String.equal b.Block.hash digest ->
                  send_all t (Msg.Bft (Msg.Commit_vote { view; seq; digest }))
              | _ -> ())
            else if s.vview = view then begin
              let digest_ok =
                match s.block with
                | Some b -> String.equal b.Block.hash digest
                | None -> true
              in
              if digest_ok then begin
                s.prepares <- SSet.add src s.prepares;
                maybe_commit t seq
              end
            end
          end)
  | Msg.Bft (Msg.Commit_vote { view; seq; digest }) ->
      Cpu.run t.cpu ~cost:t.recv_cpu (fun () ->
          if view = t.view && not (in_view_change t) then begin
            let s = state t seq in
            if (not s.delivered) && s.vview = view then begin
              let digest_ok =
                match s.block with
                | Some b -> String.equal b.Block.hash digest
                | None -> true
              in
              if digest_ok then begin
                s.commits <- SSet.add src s.commits;
                deliver_ready t
              end
            end
          end)
  | Msg.Bft (Msg.View_change { view = v; last_delivered; entries }) ->
      Cpu.run t.cpu ~cost:t.recv_cpu (fun () ->
          if v <= t.view then (
            (* straggler that missed the change we already completed *)
            match t.last_new_view with
            | Some nv -> send_to t src nv
            | None -> ())
          else begin
            let tbl = vc_table t v in
            if not (Hashtbl.mem tbl src) then begin
              Hashtbl.replace tbl src (last_delivered, entries);
              (* join once f+1 distinct replicas want out of this view —
                 at least one of them is honest *)
              if v > t.pending_view && Hashtbl.length tbl >= t.f + 1 then
                send_view_change t v
              else maybe_become_primary t v
            end
          end)
  | Msg.Bft (Msg.New_view { view = v; entries }) ->
      Cpu.run t.cpu ~cost:(t.recv_cpu +. (t.block_cpu /. 4.)) (fun () ->
          if String.equal src (primary_of t v) && v >= t.view then begin
            if v > t.view then enter_view t v;
            if v = t.view then begin
              t.last_new_view <- Some msg;
              adopt_entries t v entries
            end
          end)
  | _ -> ()

let create ~net ~name ~names ~identity ?auth ~block_size ~block_timeout
    ?view_timeout ?(tx_cpu = 0.00002) ?(recv_cpu = 0.0012) ?(send_cpu = 0.0006)
    ?(block_cpu = 0.018) ~peers () =
  if names = [] then invalid_arg "Bft.create: no names";
  let n = List.length names in
  let view_timeout =
    match view_timeout with Some v -> v | None -> 4.0 *. block_timeout
  in
  let t =
    {
      net;
      name;
      names;
      others = List.filter (fun x -> not (String.equal x name)) names;
      identity;
      clock = Msg.Net.clock net;
      cpu = Cpu.create (Msg.Net.clock net);
      cutter = Cutter.create ?auth ~block_size ();
      assembler = Assembler.create ~identity ~metadata:"bft";
      block_timeout;
      view_timeout;
      tx_cpu;
      recv_cpu;
      send_cpu;
      block_cpu;
      peers;
      f = (n - 1) / 3;
      states = Hashtbl.create 64;
      next_deliver = 1;
      delivered_count = 0;
      activity = 0;
      top_seq = 0;
      view = 0;
      pending_view = 0;
      view_changes = 0;
      crashed = false;
      vc_votes = Hashtbl.create 4;
      last_new_view = None;
      vc_armed = false;
      vc_epoch = 0;
    }
  in
  Msg.Net.register net ~name (fun ~src msg -> handle t ~src msg);
  t

let is_leader = is_primary

let blocks_delivered t = t.delivered_count

let queued t = if t.crashed then 0 else Cutter.pending t.cutter

let auth_verified t = Cutter.auth_verified t.cutter

let auth_rejected t = Cutter.auth_rejected t.cutter

let replays t = Cutter.replays t.cutter

let view t = t.view

let view_changes t = t.view_changes

let name t = t.name

let primary t = primary_of t t.view

let crash t =
  t.crashed <- true;
  t.vc_epoch <- t.vc_epoch + 1;
  t.vc_armed <- false;
  Msg.Net.unregister t.net ~name:t.name

let restart t =
  t.crashed <- false;
  Msg.Net.register t.net ~name:t.name (fun ~src msg -> handle t ~src msg);
  (* Keep in-memory protocol state (mirrors {!Raft.restart}). If a view
     change displaced us while down, our stale proposals are ignored by
     replicas in the higher view and we adopt it from the legitimate
     primary's next PRE-PREPARE or a re-sent NEW-VIEW; meanwhile the
     watchdog keeps liveness for the work we still hold. *)
  if work_outstanding t then begin
    ensure_vc_timer t;
    if is_primary t then drain_backlog t else relay_backlog t
  end

let is_crashed t = t.crashed
