(** Row-snapshot renderers for the node-local introspection views
    (DESIGN.md §10): the column lists and [Value.t] row encodings of
    [sys.metrics] and [sys.nodes]. The node layer owns registration (via
    [Catalog.register_virtual]) and supplies the facts; this module only
    fixes the schemas so every node renders identical bytes for identical
    inputs. *)

(** Columns of [sys.metrics]: node, name, kind, n, value, vmin, vmax,
    p50, p95 — one row per {!Registry.entry} ([value] is the counter
    value, gauge value or histogram mean depending on [kind]; the
    min/max/percentile columns are 0 for non-histograms). *)
val metrics_columns : Brdb_storage.Schema.column list

val metric_row : Registry.entry -> Brdb_storage.Value.t array

(** Rows for a registry snapshot, in the snapshot's (already sorted)
    order. *)
val metric_rows : Registry.entry list -> Brdb_storage.Value.t array list

(** Columns of [sys.nodes]: node (PK), height, inbox, crashed,
    fetch_requests, fetched_blocks, blocks_rejected, crashes, restarts. *)
val nodes_columns : Brdb_storage.Schema.column list

val node_row :
  node:string ->
  height:int ->
  inbox:int ->
  crashed:bool ->
  fetch_requests:int ->
  fetched_blocks:int ->
  blocks_rejected:int ->
  crashes:int ->
  restarts:int ->
  Brdb_storage.Value.t array

(** Columns of [sys.alerts] (ISSUE 9): seq (PK), ts, height, transition,
    detector, severity, subject, evidence — one row per {!Health.alert}
    transition, in log order. *)
val alerts_columns : Brdb_storage.Schema.column list

val alert_row : Health.alert -> Brdb_storage.Value.t array

(** Columns of [sys.detectors]: detector (PK), severity, rule, firing,
    fires, clears, last_ts, last_height — one row per {!Health.summary}. *)
val detectors_columns : Brdb_storage.Schema.column list

val detector_row : Health.summary -> Brdb_storage.Value.t array

(** Columns of [sys.clients] (ISSUE 10): session (PK), user, peer,
    status, pinned_height, reads_pinned, submitted, early_aborts,
    receipts_verified — one row per client-plane session, in session-id
    order. The client hub supplies the facts; registration lives in
    [Blockchain_db] like the other cluster-level views. *)
val clients_columns : Brdb_storage.Schema.column list

val client_row :
  session:string ->
  user:string ->
  peer:string ->
  status:string ->
  pinned_height:int ->
  reads_pinned:int ->
  submitted:int ->
  early_aborts:int ->
  receipts_verified:int ->
  Brdb_storage.Value.t array
