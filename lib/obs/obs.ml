type t = { trace : Trace.t; metrics : Registry.t }

let create ?(tracing = false) ?now () =
  {
    trace = (if tracing then Trace.create ?now () else Trace.null);
    metrics = Registry.create ();
  }

let disabled () = create ()

let trace t = t.trace

let metrics t = t.metrics

let tracing t = Trace.enabled t.trace
