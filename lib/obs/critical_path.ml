type input = {
  n : int;
  weights : float array;
  edges : (int * int) list;
}

type result = {
  serial_s : float;
  critical_s : float;
  headroom : float;
  waves : int;
  path : int list;
}

let analyze { n; weights; edges } =
  if Array.length weights <> n then
    invalid_arg "Critical_path.analyze: weights length <> n";
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a >= b then
        invalid_arg "Critical_path.analyze: edge not (low, high) in range")
    edges;
  let serial_s = Array.fold_left ( +. ) 0. weights in
  (* Incoming adjacency; positions are already a topological order because
     every edge points low -> high (commit order within the block). *)
  let inc = Array.make (max n 1) [] in
  List.iter (fun (a, b) -> inc.(b) <- a :: inc.(b)) edges;
  let finish = Array.make (max n 1) 0. in
  let depth = Array.make (max n 1) 1 in
  let pred = Array.make (max n 1) (-1) in
  for i = 0 to n - 1 do
    let best, best_pred =
      List.fold_left
        (fun (best, bp) a -> if finish.(a) > best then (finish.(a), a) else (best, bp))
        (0., -1) inc.(i)
    in
    finish.(i) <- weights.(i) +. best;
    (* Levelization: depth is 1 + the max depth over ALL predecessors (not
       just the latest-finishing one — a shallow pred can still finish
       last, and wave membership follows edges, not finish times). *)
    List.iter
      (fun a -> if depth.(a) + 1 > depth.(i) then depth.(i) <- depth.(a) + 1)
      inc.(i);
    pred.(i) <- best_pred
  done;
  let critical_s = Array.fold_left Float.max 0. (Array.sub finish 0 (max n 0)) in
  let last = ref (-1) in
  for i = 0 to n - 1 do
    if !last < 0 || finish.(i) > finish.(!last) then last := i
  done;
  let path =
    let rec walk acc i = if i < 0 then acc else walk (i :: acc) pred.(i) in
    if n = 0 then [] else walk [] !last
  in
  let waves = if n = 0 then 0 else Array.fold_left Stdlib.max 0 (Array.sub depth 0 n) in
  let headroom = if critical_s <= 0. then 1. else serial_s /. critical_s in
  { serial_s; critical_s; headroom; waves; path }

let schedule { n; weights; edges } =
  if Array.length weights <> n then
    invalid_arg "Critical_path.schedule: weights length <> n";
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a >= b then
        invalid_arg "Critical_path.schedule: edge not (low, high) in range")
    edges;
  (* Positions are a topological order (edges point low -> high), so one
     forward pass levelizes: a position's wave is 1 + the max wave over
     its in-block predecessors, 0 with none. *)
  let inc = Array.make (max n 1) [] in
  List.iter (fun (a, b) -> inc.(b) <- a :: inc.(b)) edges;
  let wave = Array.make (max n 0) 0 in
  for i = 0 to n - 1 do
    List.iter
      (fun a -> if wave.(a) + 1 > wave.(i) then wave.(i) <- wave.(a) + 1)
      inc.(i)
  done;
  wave
