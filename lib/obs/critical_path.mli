(** Per-block critical-path analysis (ISSUE 7, tentpole b).

    A block's transactions are applied serially in commit order (§3.4),
    but only the dependency structure — rw antidependencies from SSI
    metadata plus ww conflicts on claimed versions — actually {e forces}
    an order. The longest weighted path through that DAG is the time the
    block would take under perfect intra-block parallelism; the ratio
    [serial /. critical] is the {b parallel headroom} that sizes ROADMAP
    item 1 (parallel validation) before building it. Cf. Meir et al.,
    "Lockless Transaction Isolation in Hyperledger Fabric" (PAPERS.md),
    which exploits the same structure.

    The analyzer is a pure function: callers extract the edges and
    per-transaction weights (cost-model [tet] values), so results are
    deterministic and identical on every node of a deployment. *)

type input = {
  n : int;  (** transactions in the block, positions [0 .. n-1] *)
  weights : float array;
      (** simulated execution cost per position (seconds); 0 for
          transactions that never execute (early rejects) *)
  edges : (int * int) list;
      (** dependency edges [(a, b)] with [a < b]: position [b] must wait
          for position [a] (rw or ww conflict; commit order resolves the
          direction) *)
}

type result = {
  serial_s : float;  (** sum of all weights — today's serial execution *)
  critical_s : float;  (** longest weighted path through the DAG *)
  headroom : float;
      (** [serial_s /. critical_s]; [1.0] for an empty block — always
          >= 1.0 *)
  waves : int;
      (** longest edge-count chain + 1: minimum number of sequential
          execution waves any scheduler needs *)
  path : int list;  (** positions of one longest path, in commit order *)
}

(** Raises [Invalid_argument] if a weight array mismatches [n] or an edge
    is out of range / not (low, high). *)
val analyze : input -> result

(** [schedule input] levelizes the DAG into topological waves: position
    [i]'s wave index is [0] if it has no in-block predecessors, otherwise
    one more than the max wave over its predecessors. Every edge [(a, b)]
    satisfies [wave.(a) < wave.(b)], so executing waves in ascending index
    order with a barrier between them respects every dependency; this is
    the schedule the ISSUE 8 parallel validator runs. Same validation and
    exception behavior as {!analyze}. *)
val schedule : input -> int array
