(** Trace exporters.

    Both renderers are pure functions of the event list with fixed number
    formatting: equal event streams produce byte-identical output, which
    is how the determinism acceptance tests compare traces across runs.

    - {!jsonl_string}: one JSON object per line, keeping node/track as
      strings — the diff-friendly format.
    - {!chrome_string}: Chrome [trace_event] JSON (loadable in
      [chrome://tracing] or Perfetto). Nodes map to integer pids and
      (node, track) pairs to tids, named via "M" metadata records;
      timestamps/durations are microseconds; async events carry the
      transaction id so submit → ordered → decided renders as one arrow
      chain per transaction. *)

val jsonl_string : Trace.event list -> string

val chrome_string : Trace.event list -> string

(** [causal_jsonl ~node events] projects [events] down to [node]'s causal
    skeleton: block/txn-track events with node-local data stripped — the
    node name normalized, timestamps/durations/sequence numbers dropped,
    args filtered to the replicated keys ([tx], [height], [txs]; abort
    reasons and classes are node-local per §3.4.1 and excluded), and
    replayed events (crash recovery, §3.6) deduplicated. Because every
    replica applies the same block stream, this projection is
    byte-identical across the nodes of a deployment — the property the
    cross-node causal-trace qcheck pins down. *)
val causal_jsonl : node:string -> Trace.event list -> string
