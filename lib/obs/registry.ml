module Stat = Brdb_sim.Metrics.Stat

type metric = Counter of int ref | Gauge of float ref | Histogram of Stat.t

type t = { tbl : (string * string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or t ~node name mk =
  let key = (node, name) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.replace t.tbl key m;
      m

let mismatch name m want =
  invalid_arg
    (Printf.sprintf "Registry: metric %S is a %s, not a %s" name (kind_name m)
       want)

let incr ?(by = 1) t ~node name =
  match find_or t ~node name (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | m -> mismatch name m "counter"

let set t ~node name v =
  match find_or t ~node name (fun () -> Gauge (ref 0.)) with
  | Gauge r -> r := v
  | m -> mismatch name m "gauge"

let observe t ~node name v =
  match find_or t ~node name (fun () -> Histogram (Stat.create ())) with
  | Histogram s -> Stat.add s v
  | m -> mismatch name m "histogram"

let counter t ~node name =
  match Hashtbl.find_opt t.tbl (node, name) with
  | Some (Counter r) -> !r
  | _ -> 0

let gauge t ~node name =
  match Hashtbl.find_opt t.tbl (node, name) with
  | Some (Gauge r) -> !r
  | _ -> 0.

let histogram t ~node name =
  match Hashtbl.find_opt t.tbl (node, name) with
  | Some (Histogram s) -> Some s
  | _ -> None

type entry = {
  e_node : string;
  e_name : string;
  e_kind : string;
  e_count : int;
  e_value : float;
  e_min : float;
  e_max : float;
  e_p50 : float;
  e_p95 : float;
}

let entry_of node name = function
  | Counter r ->
      {
        e_node = node;
        e_name = name;
        e_kind = "counter";
        e_count = !r;
        e_value = float_of_int !r;
        e_min = 0.;
        e_max = 0.;
        e_p50 = 0.;
        e_p95 = 0.;
      }
  | Gauge g ->
      {
        e_node = node;
        e_name = name;
        e_kind = "gauge";
        e_count = 0;
        e_value = !g;
        e_min = 0.;
        e_max = 0.;
        e_p50 = 0.;
        e_p95 = 0.;
      }
  | Histogram s ->
      {
        e_node = node;
        e_name = name;
        e_kind = "histogram";
        e_count = Stat.count s;
        e_value = Stat.mean s;
        e_min = Stat.min s;
        e_max = Stat.max s;
        e_p50 = Stat.percentile s 50.;
        e_p95 = Stat.percentile s 95.;
      }

(* Hashtbl iteration order is nondeterministic; every view sorts before
   returning so registry output can be diffed across runs. *)
let snapshot t =
  Hashtbl.fold (fun (node, name) m acc -> entry_of node name m :: acc) t.tbl []
  |> List.sort (fun a b ->
         match compare a.e_name b.e_name with
         | 0 -> compare a.e_node b.e_node
         | c -> c)

let node_view t ~node = List.filter (fun e -> e.e_node = node) (snapshot t)

let nodes t =
  Hashtbl.fold (fun (node, _) _ acc -> node :: acc) t.tbl []
  |> List.sort_uniq compare

let cluster_view t =
  let items =
    Hashtbl.fold (fun (node, name) m acc -> ((name, node), m) :: acc) t.tbl []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  let rec group = function
    | [] -> []
    | (((name, _), _) :: _) as l ->
        let same, rest = List.partition (fun ((n, _), _) -> n = name) l in
        (name, List.map snd same) :: group rest
  in
  List.map
    (fun (name, ms) ->
      match ms with
      | Counter _ :: _ ->
          let total =
            List.fold_left
              (fun acc -> function Counter r -> acc + !r | _ -> acc)
              0 ms
          in
          entry_of "cluster" name (Counter (ref total))
      | Gauge _ :: _ ->
          let total =
            List.fold_left
              (fun acc -> function Gauge g -> acc +. !g | _ -> acc)
              0. ms
          in
          entry_of "cluster" name (Gauge (ref total))
      | Histogram _ :: _ ->
          let merged = Stat.create () in
          List.iter
            (function
              | Histogram s -> List.iter (Stat.add merged) (Stat.samples s)
              | _ -> ())
            ms;
          entry_of "cluster" name (Histogram merged)
      | [] -> assert false)
    (group items)

(* --- streaming smoothers (ISSUE 9) ---------------------------------------
   Shared by the Health detectors so windowed rules don't hand-roll
   pruning/seeding logic. Both are driven entirely by caller-supplied
   sample times (the simulated clock), so they stay deterministic. *)

module Window = struct
  (* newest sample first; pruned lazily on every access *)
  type t = { span : float; mutable samples : (float * float) list }

  let create ~span =
    if span <= 0. then invalid_arg "Registry.Window.create: span must be > 0";
    { span; samples = [] }

  let prune t ~now =
    t.samples <- List.filter (fun (ts, _) -> now -. ts <= t.span) t.samples

  let add t ~now v =
    t.samples <- (now, v) :: t.samples;
    prune t ~now

  let count t ~now =
    prune t ~now;
    List.length t.samples

  let sum t ~now =
    prune t ~now;
    List.fold_left (fun acc (_, v) -> acc +. v) 0. t.samples

  let mean t ~now =
    prune t ~now;
    match t.samples with
    | [] -> 0.
    | l ->
        List.fold_left (fun acc (_, v) -> acc +. v) 0. l
        /. float_of_int (List.length l)
end

module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable count : int }

  let create ~alpha =
    if not (alpha > 0. && alpha <= 1.) then
      invalid_arg "Registry.Ewma.create: alpha must be in (0, 1]";
    { alpha; value = 0.; count = 0 }

  (* the first sample seeds the average exactly (no bias towards 0) *)
  let add t v =
    if t.count = 0 then t.value <- v
    else t.value <- t.value +. (t.alpha *. (v -. t.value));
    t.count <- t.count + 1

  let value t = t.value

  let count t = t.count
end

let pp_entry ppf e =
  match e.e_kind with
  | "counter" -> Format.fprintf ppf "%-34s %-12s %8d" e.e_name e.e_node e.e_count
  | "gauge" -> Format.fprintf ppf "%-34s %-12s %8.1f" e.e_name e.e_node e.e_value
  | _ ->
      Format.fprintf ppf "%-34s %-12s n=%-5d mean=%-8.3f p50=%-8.3f p95=%-8.3f max=%.3f"
        e.e_name e.e_node e.e_count e.e_value e.e_p50 e.e_p95 e.e_max

let pp_entries ppf es =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) es
