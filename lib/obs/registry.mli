(** Metrics registry: named counters, gauges and histograms keyed by
    (node, metric name), with per-node and cluster-wide views.

    Histograms reuse {!Brdb_sim.Metrics.Stat} (all samples retained, so a
    cluster view can merge per-node distributions exactly). Metrics are
    created on first use; using the same name with a different kind is a
    programmer error ([Invalid_argument]).

    The registry is always-on (it never touches rng, clock scheduling or
    committed state); only {!Trace} is gated behind an enabled flag. *)

type t

val create : unit -> t

(** [incr ?by t ~node name] bumps a counter (created at 0). *)
val incr : ?by:int -> t -> node:string -> string -> unit

(** [set t ~node name v] installs an absolute gauge value. *)
val set : t -> node:string -> string -> float -> unit

(** [observe t ~node name v] adds a sample to a histogram. *)
val observe : t -> node:string -> string -> float -> unit

(** Current counter value; [0] when absent. *)
val counter : t -> node:string -> string -> int

(** Current gauge value; [0.] when absent. *)
val gauge : t -> node:string -> string -> float

val histogram : t -> node:string -> string -> Brdb_sim.Metrics.Stat.t option

(** One row of a view; [e_count]/[e_value] carry the counter value, the
    gauge value, or the histogram count/mean depending on [e_kind]. *)
type entry = {
  e_node : string;
  e_name : string;
  e_kind : string;  (** ["counter"] | ["gauge"] | ["histogram"] *)
  e_count : int;
  e_value : float;
  e_min : float;
  e_max : float;
  e_p50 : float;
  e_p95 : float;
}

(** All metrics, sorted by (name, node) — deterministic regardless of
    insertion order. *)
val snapshot : t -> entry list

val node_view : t -> node:string -> entry list

(** Nodes that have recorded at least one metric, sorted. *)
val nodes : t -> string list

(** One entry per metric name aggregated over all nodes (counters and
    gauges sum; histograms merge their samples); [e_node = "cluster"]. *)
val cluster_view : t -> entry list

val pp_entry : Format.formatter -> entry -> unit

val pp_entries : Format.formatter -> entry list -> unit
