(** Metrics registry: named counters, gauges and histograms keyed by
    (node, metric name), with per-node and cluster-wide views.

    Histograms reuse {!Brdb_sim.Metrics.Stat} (all samples retained, so a
    cluster view can merge per-node distributions exactly). Metrics are
    created on first use; using the same name with a different kind is a
    programmer error ([Invalid_argument]).

    The registry is always-on (it never touches rng, clock scheduling or
    committed state); only {!Trace} is gated behind an enabled flag. *)

type t

val create : unit -> t

(** [incr ?by t ~node name] bumps a counter (created at 0). *)
val incr : ?by:int -> t -> node:string -> string -> unit

(** [set t ~node name v] installs an absolute gauge value. *)
val set : t -> node:string -> string -> float -> unit

(** [observe t ~node name v] adds a sample to a histogram. *)
val observe : t -> node:string -> string -> float -> unit

(** Current counter value; [0] when absent. *)
val counter : t -> node:string -> string -> int

(** Current gauge value; [0.] when absent. *)
val gauge : t -> node:string -> string -> float

val histogram : t -> node:string -> string -> Brdb_sim.Metrics.Stat.t option

(** One row of a view; [e_count]/[e_value] carry the counter value, the
    gauge value, or the histogram count/mean depending on [e_kind]. *)
type entry = {
  e_node : string;
  e_name : string;
  e_kind : string;  (** ["counter"] | ["gauge"] | ["histogram"] *)
  e_count : int;
  e_value : float;
  e_min : float;
  e_max : float;
  e_p50 : float;
  e_p95 : float;
}

(** All metrics, sorted by (name, node) — deterministic regardless of
    insertion order. *)
val snapshot : t -> entry list

val node_view : t -> node:string -> entry list

(** Nodes that have recorded at least one metric, sorted. *)
val nodes : t -> string list

(** One entry per metric name aggregated over all nodes (counters and
    gauges sum; histograms merge their samples); [e_node = "cluster"]. *)
val cluster_view : t -> entry list

(** Time-windowed accumulator over (sample time, value) pairs — the
    smoothing primitive behind the {!Health} detectors (ISSUE 9).
    Samples older than [span] seconds are pruned on every access; time is
    always supplied by the caller (the simulated clock), never read here,
    so a window's contents are a pure function of its [add] history.

    Edge cases are total: an empty window (or one whose every sample has
    aged out) sums to [0.] and means [0.]; a single sample is its own
    mean; a window shorter than the sampling interval simply holds at
    most one sample at a time. *)
module Window : sig
  type t

  (** [create ~span] — [span] is the window length in seconds
      ([Invalid_argument] unless positive). *)
  val create : span:float -> t

  val add : t -> now:float -> float -> unit

  (** Samples newer than [now - span]. *)
  val count : t -> now:float -> int

  (** Sum of in-window values; [0.] when empty. *)
  val sum : t -> now:float -> float

  (** Mean of in-window values; [0.] when empty. *)
  val mean : t -> now:float -> float
end

(** Exponentially-weighted moving average. The first sample seeds the
    average exactly (so a single sample reads back unchanged); each later
    sample moves it by [alpha * (v - value)]. [value] is [0.] before any
    sample. *)
module Ewma : sig
  type t

  (** [Invalid_argument] unless [0 < alpha <= 1]. *)
  val create : alpha:float -> t

  val add : t -> float -> unit

  val value : t -> float

  val count : t -> int
end

val pp_entry : Format.formatter -> entry -> unit

val pp_entries : Format.formatter -> entry list -> unit
