type value = I of int | F of float | S of string | B of bool

type kind =
  | Complete
  | Instant
  | Async_begin
  | Async_instant
  | Async_end
  | Counter

type event = {
  seq : int;
  ts : float;
  dur : float;
  node : string;
  track : string;
  cat : string;
  kind : kind;
  name : string;
  id : string;
  span : string;
  parent : string;
  follows : string;
  args : (string * value) list;
}

type t = {
  enabled : bool;
  now : unit -> float;
  mutable events_rev : event list;
  mutable seq : int;
}

(* The null sink is shared and immutable in practice: every emitter checks
   [enabled] before touching state, so disabled tracing allocates nothing
   beyond the (unevaluated-arg) function call. *)
let null = { enabled = false; now = (fun () -> 0.); events_rev = []; seq = 0 }

let create ?(now = fun () -> 0.) () =
  { enabled = true; now; events_rev = []; seq = 0 }

let enabled t = t.enabled

let now t = t.now ()

let push t ~ts ~dur ~node ~track ~cat ~kind ~name ~id ~span ~parent ~follows
    ~args =
  let ev =
    {
      seq = t.seq;
      ts;
      dur;
      node;
      track;
      cat;
      kind;
      name;
      id;
      span;
      parent;
      follows;
      args;
    }
  in
  t.seq <- t.seq + 1;
  t.events_rev <- ev :: t.events_rev

let complete t ~node ?(track = "main") ?(cat = "span") ~name ~ts ~dur
    ?(span = "") ?(parent = "") ?(follows = "") ?(args = []) () =
  if t.enabled then
    push t ~ts ~dur ~node ~track ~cat ~kind:Complete ~name ~id:"" ~span ~parent
      ~follows ~args

let instant t ~node ?(track = "main") ?(cat = "event") ~name ?ts ?(span = "")
    ?(parent = "") ?(follows = "") ?(args = []) () =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> t.now () in
    push t ~ts ~dur:0. ~node ~track ~cat ~kind:Instant ~name ~id:"" ~span
      ~parent ~follows ~args

let async t kind ~node ?(track = "async") ?(cat = "txn") ~name ~id ?ts
    ?(span = "") ?(parent = "") ?(follows = "") ?(args = []) () =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> t.now () in
    push t ~ts ~dur:0. ~node ~track ~cat ~kind ~name ~id ~span ~parent ~follows
      ~args

let async_begin t = async t Async_begin

let async_instant t = async t Async_instant

let async_end t = async t Async_end

let counter t ~node ?(track = "counters") ~name ~value ?ts () =
  if t.enabled then
    let ts = match ts with Some ts -> ts | None -> t.now () in
    push t ~ts ~dur:0. ~node ~track ~cat:"counter" ~kind:Counter ~name ~id:""
      ~span:"" ~parent:"" ~follows:"" ~args:[ (name, F value) ]

let events t = List.rev t.events_rev

let count t = t.seq

let clear t =
  t.events_rev <- [];
  t.seq <- 0
