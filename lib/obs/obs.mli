(** Observability bundle threaded through the node/core layers: one
    {!Trace} sink (disabled unless requested) plus one always-on
    {!Registry} shared by every node of a deployment, so the registry can
    offer per-node and cluster-wide views. *)

type t = { trace : Trace.t; metrics : Registry.t }

(** [create ~tracing ~now ()] — pass [now = Brdb_sim.Clock.now clock] when
    tracing so span timestamps follow simulated time. *)
val create : ?tracing:bool -> ?now:(unit -> float) -> unit -> t

(** Fresh bundle with the null tracer — the default for components built
    outside a {!Brdb_core.Blockchain_db} deployment. *)
val disabled : unit -> t

val trace : t -> Trace.t

val metrics : t -> Registry.t

val tracing : t -> bool
