type severity = Info | Warning | Critical

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

type detector =
  | Ordering_stall
  | View_change_storm
  | Abort_spike
  | Replication_lag
  | Snapshot_failure
  | Auth_rejection_burst
  | Divergence_warning

let all_detectors =
  [
    Ordering_stall;
    View_change_storm;
    Abort_spike;
    Replication_lag;
    Snapshot_failure;
    Auth_rejection_burst;
    Divergence_warning;
  ]

let detector_id = function
  | Ordering_stall -> "ordering_stall"
  | View_change_storm -> "view_change_storm"
  | Abort_spike -> "abort_spike"
  | Replication_lag -> "replication_lag"
  | Snapshot_failure -> "snapshot_failure"
  | Auth_rejection_burst -> "auth_rejection_burst"
  | Divergence_warning -> "divergence_warning"

let detector_of_id s =
  List.find_opt (fun d -> String.equal (detector_id d) s) all_detectors

let severity_of = function
  | Ordering_stall -> Critical
  | View_change_storm -> Warning
  | Abort_spike -> Warning
  | Replication_lag -> Warning
  | Snapshot_failure -> Warning
  | Auth_rejection_burst -> Critical
  | Divergence_warning -> Critical

let describe = function
  | Ordering_stall -> "no block cut while client work is pending"
  | View_change_storm -> "consensus churn: extra elections or view changes"
  | Abort_spike -> "EWMA abort fraction of decided txns above threshold"
  | Replication_lag -> "peer height gap sustained above threshold"
  | Snapshot_failure -> "corrupted snapshot chunks or failed bootstraps"
  | Auth_rejection_burst ->
      "blocks refused by authenticated delivery or forged submissions dropped"
  | Divergence_warning -> "state digests disagree at a common height"

type transition = Fire | Clear

let transition_name = function Fire -> "fire" | Clear -> "clear"

type alert = {
  al_seq : int;
  al_time : float;
  al_height : int;
  al_detector : detector;
  al_severity : severity;
  al_transition : transition;
  al_subject : string;
  al_evidence : string;
}

(* Canonical rendering: the byte string compared across nodes and runs.
   %.3f keeps sim-time textual form stable (ticks land on multiples of
   the health interval, far above float noise). *)
let render_alert a =
  Printf.sprintf "#%d %.3fs h=%d %s %s %s %s | %s" a.al_seq a.al_time
    a.al_height
    (transition_name a.al_transition)
    (detector_id a.al_detector)
    (severity_name a.al_severity)
    a.al_subject a.al_evidence

type thresholds = {
  stall_s : float;
  storm_window_s : float;
  storm_threshold : int;
  ignore_first_election : bool;
  abort_alpha : float;
  abort_ratio : float;
  abort_window_s : float;
  abort_min_decided : int;
  lag_blocks : int;
  lag_sustain : int;
  fail_window_s : float;
  corrupt_streak : int;
  reject_burst : int;
}

let default_thresholds =
  {
    stall_s = 1.0;
    storm_window_s = 2.0;
    storm_threshold = 1;
    ignore_first_election = true;
    abort_alpha = 0.3;
    abort_ratio = 0.5;
    abort_window_s = 1.0;
    abort_min_decided = 8;
    lag_blocks = 4;
    lag_sustain = 3;
    fail_window_s = 2.0;
    corrupt_streak = 3;
    reject_burst = 1;
  }

type node_sample = {
  ns_node : string;
  ns_height : int;
  ns_crashed : bool;
  ns_blocks_rejected : int;
  ns_chunks_corrupted : int;
  ns_install_failures : int;
  ns_divergence_flags : int;
}

type sample = {
  s_time : float;
  s_nodes : node_sample list;
  s_blocks_cut : int;
  s_pending : int;
  s_decided : int;
  s_aborted : int;
  s_elections : int;
  s_view_changes : int;
  s_digests_agree : bool;
  s_auth_rejected : int;
}

(* Per-(detector, subject) hysteresis cell. *)
type dstate = {
  mutable firing : bool;
  mutable fires : int;
  mutable clears : int;
  mutable last_time : float;
  mutable last_height : int;
}

type t = {
  th : thresholds;
  mutable seq : int;
  mutable log : alert list; (* newest first *)
  states : (string * string, dstate) Hashtbl.t; (* (detector id, subject) *)
  mutable prev : sample option;
  mutable last_cut_value : int;
  mutable last_cut_time : float;
  churn_win : Registry.Window.t;
  abort_ewma : Registry.Ewma.t;
  decided_win : Registry.Window.t;
  div_win : Registry.Window.t;
  lag_streak : (string, int ref) Hashtbl.t;
  reject_win : (string, Registry.Window.t) Hashtbl.t;
  snap_win : (string, Registry.Window.t) Hashtbl.t;
  auth_win : Registry.Window.t;
}

let create ?(thresholds = default_thresholds) () =
  let th = thresholds in
  if th.stall_s <= 0. || th.storm_window_s <= 0. || th.abort_window_s <= 0.
     || th.fail_window_s <= 0.
  then invalid_arg "Health.create: window lengths must be positive";
  {
    th;
    seq = 0;
    log = [];
    states = Hashtbl.create 16;
    prev = None;
    last_cut_value = 0;
    last_cut_time = 0.;
    churn_win = Registry.Window.create ~span:th.storm_window_s;
    abort_ewma = Registry.Ewma.create ~alpha:th.abort_alpha;
    decided_win = Registry.Window.create ~span:th.abort_window_s;
    div_win = Registry.Window.create ~span:th.fail_window_s;
    lag_streak = Hashtbl.create 8;
    reject_win = Hashtbl.create 8;
    snap_win = Hashtbl.create 8;
    auth_win = Registry.Window.create ~span:th.fail_window_s;
  }

let state t d subject =
  let key = (detector_id d, subject) in
  match Hashtbl.find_opt t.states key with
  | Some s -> s
  | None ->
      let s =
        { firing = false; fires = 0; clears = 0; last_time = 0.; last_height = 0 }
      in
      Hashtbl.replace t.states key s;
      s

let node_window tbl ~span node =
  match Hashtbl.find_opt tbl node with
  | Some w -> w
  | None ->
      let w = Registry.Window.create ~span in
      Hashtbl.replace tbl node w;
      w

let emit t ~now ~height d subject tr evidence acc =
  t.seq <- t.seq + 1;
  let al =
    {
      al_seq = t.seq;
      al_time = now;
      al_height = height;
      al_detector = d;
      al_severity = severity_of d;
      al_transition = tr;
      al_subject = subject;
      al_evidence = evidence;
    }
  in
  t.log <- al :: t.log;
  al :: acc

(* Edge-triggered emission with per-cell state: a detector whose condition
   holds across many ticks fires once and clears once. *)
let set_condition t ~now ~height d subject ~active ~evidence acc =
  let s = state t d subject in
  if active && not s.firing then begin
    s.firing <- true;
    s.fires <- s.fires + 1;
    s.last_time <- now;
    s.last_height <- height;
    emit t ~now ~height d subject Fire (evidence ()) acc
  end
  else if (not active) && s.firing then begin
    s.firing <- false;
    s.clears <- s.clears + 1;
    s.last_time <- now;
    s.last_height <- height;
    emit t ~now ~height d subject Clear (evidence ()) acc
  end
  else acc

let observe t (s : sample) =
  let now = s.s_time in
  let th = t.th in
  let max_height =
    List.fold_left (fun acc n -> max acc n.ns_height) 0 s.s_nodes
  in
  match t.prev with
  | None ->
      (* first tick seeds the baselines; nothing can fire yet *)
      t.last_cut_value <- s.s_blocks_cut;
      t.last_cut_time <- now;
      t.prev <- Some s;
      []
  | Some _ ->
  let prev = t.prev in
  let prev_node name =
    match prev with
    | None -> None
    | Some p -> List.find_opt (fun n -> String.equal n.ns_node name) p.s_nodes
  in
  let acc = [] in
  (* --- ordering stall: the cut counter is flat while work is pending.
     The stall clock restarts on every cut AND whenever the queue is
     empty, so it measures how long pending work has waited — idle gaps
     between workloads never accumulate stall age. --- *)
  if s.s_blocks_cut <> t.last_cut_value || s.s_pending = 0 then begin
    t.last_cut_value <- s.s_blocks_cut;
    t.last_cut_time <- now
  end;
  let stall_age = now -. t.last_cut_time in
  let acc =
    set_condition t ~now ~height:max_height Ordering_stall "cluster"
      ~active:(s.s_pending > 0 && stall_age > th.stall_s)
      ~evidence:(fun () ->
        Printf.sprintf "pending=%d no_cut_for=%.3fs blocks_cut=%d" s.s_pending
          stall_age s.s_blocks_cut)
      acc
  in
  (* --- view-change storm: election/view-change churn inside the window.
     The startup election a Raft cluster needs to elect its first leader
     is expected and ignored (ignore_first_election). --- *)
  let churn_total =
    s.s_view_changes
    + max 0 (s.s_elections - if th.ignore_first_election then 1 else 0)
  in
  (match prev with
  | None -> ()
  | Some p ->
      let p_churn =
        p.s_view_changes
        + max 0 (p.s_elections - if th.ignore_first_election then 1 else 0)
      in
      let d = churn_total - p_churn in
      if d > 0 then Registry.Window.add t.churn_win ~now (float_of_int d));
  let churn_in_window = Registry.Window.sum t.churn_win ~now in
  let acc =
    set_condition t ~now ~height:max_height View_change_storm "ordering"
      ~active:(churn_in_window >= float_of_int th.storm_threshold)
      ~evidence:(fun () ->
        Printf.sprintf "churn=%d/%.1fs elections=%d view_changes=%d"
          (int_of_float churn_in_window)
          th.storm_window_s s.s_elections s.s_view_changes)
      acc
  in
  (* --- abort spike: EWMA of the abort fraction of newly decided txns,
     gated on enough decisions in the window to be meaningful; clears at
     half the firing threshold (hysteresis). --- *)
  (match prev with
  | None -> ()
  | Some p ->
      let dd = s.s_decided - p.s_decided in
      let da = s.s_aborted - p.s_aborted in
      if dd > 0 then begin
        Registry.Window.add t.decided_win ~now (float_of_int dd);
        Registry.Ewma.add t.abort_ewma (float_of_int da /. float_of_int dd)
      end);
  let ew = Registry.Ewma.value t.abort_ewma in
  let decided_in_window = Registry.Window.sum t.decided_win ~now in
  let spike_state = state t Abort_spike "cluster" in
  let abort_active =
    if spike_state.firing then ew >= th.abort_ratio /. 2.
    else
      Registry.Ewma.count t.abort_ewma > 0
      && ew >= th.abort_ratio
      && decided_in_window >= float_of_int th.abort_min_decided
  in
  let acc =
    set_condition t ~now ~height:max_height Abort_spike "cluster"
      ~active:abort_active
      ~evidence:(fun () ->
        Printf.sprintf "ewma_abort_fraction=%.3f decided_in_window=%d" ew
          (int_of_float decided_in_window))
      acc
  in
  (* --- per-node detectors; s_nodes arrives in deterministic (peer list)
     order, so the emission order is deterministic too --- *)
  let acc =
    List.fold_left
      (fun acc n ->
        let node = n.ns_node in
        (* replication lag: height gap to the cluster tip, sustained for
           lag_sustain consecutive ticks; clears when the gap halves *)
        let gap = max_height - n.ns_height in
        let streak =
          match Hashtbl.find_opt t.lag_streak node with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.replace t.lag_streak node r;
              r
        in
        if gap > th.lag_blocks then incr streak else streak := 0;
        let lag_state = state t Replication_lag node in
        let lag_active =
          if lag_state.firing then gap > th.lag_blocks / 2
          else !streak >= th.lag_sustain
        in
        let acc =
          set_condition t ~now ~height:max_height Replication_lag node
            ~active:lag_active
            ~evidence:(fun () ->
              Printf.sprintf "gap=%d height=%d tip=%d crashed=%b" gap
                n.ns_height max_height n.ns_crashed)
            acc
        in
        (* snapshot-bootstrap failure: a streak of rejected chunks or any
           failed install inside the window *)
        let snap_w = node_window t.snap_win ~span:th.fail_window_s node in
        (match prev_node node with
        | None -> ()
        | Some p ->
            let d =
              n.ns_chunks_corrupted - p.ns_chunks_corrupted
              + ((n.ns_install_failures - p.ns_install_failures)
                * th.corrupt_streak)
            in
            if d > 0 then Registry.Window.add snap_w ~now (float_of_int d));
        let snap_sum = Registry.Window.sum snap_w ~now in
        let snap_state = state t Snapshot_failure node in
        let snap_active =
          if snap_state.firing then snap_sum > 0.
          else snap_sum >= float_of_int th.corrupt_streak
        in
        let acc =
          set_condition t ~now ~height:max_height Snapshot_failure node
            ~active:snap_active
            ~evidence:(fun () ->
              Printf.sprintf
                "corrupt_events=%d/%.1fs chunks_corrupted=%d install_failures=%d"
                (int_of_float snap_sum) th.fail_window_s n.ns_chunks_corrupted
                n.ns_install_failures)
            acc
        in
        (* equivocation / auth-rejection burst: any block refused by §4.4
           authenticated delivery is anomalous (zero in clean runs) *)
        let rej_w = node_window t.reject_win ~span:th.fail_window_s node in
        (match prev_node node with
        | None -> ()
        | Some p ->
            let d = n.ns_blocks_rejected - p.ns_blocks_rejected in
            if d > 0 then Registry.Window.add rej_w ~now (float_of_int d));
        let rej_sum = Registry.Window.sum rej_w ~now in
        set_condition t ~now ~height:max_height Auth_rejection_burst node
          ~active:(rej_sum >= float_of_int th.reject_burst)
          ~evidence:(fun () ->
            Printf.sprintf "rejected=%d/%.1fs total_rejected=%d"
              (int_of_float rej_sum) th.fail_window_s n.ns_blocks_rejected)
          acc)
      acc s.s_nodes
  in
  (* --- forged-submission burst at the ordering service (ISSUE 10): any
     transaction dropped by cut-time batch signature verification is
     anomalous (zero in clean runs — clients sign every submission) *)
  (match prev with
  | None -> ()
  | Some p ->
      let d = s.s_auth_rejected - p.s_auth_rejected in
      if d > 0 then Registry.Window.add t.auth_win ~now (float_of_int d));
  let auth_sum = Registry.Window.sum t.auth_win ~now in
  let acc =
    set_condition t ~now ~height:max_height Auth_rejection_burst "ordering"
      ~active:(auth_sum >= float_of_int th.reject_burst)
      ~evidence:(fun () ->
        Printf.sprintf "forged=%d/%.1fs total_forged=%d" (int_of_float auth_sum)
          th.fail_window_s s.s_auth_rejected)
      acc
  in
  (* --- divergence early-warning: live digest disagreement, or a node's
     own checkpoint monitor flagging a mismatch, inside the window --- *)
  (match prev with
  | None -> ()
  | Some p ->
      let flags smp =
        List.fold_left (fun acc n -> acc + n.ns_divergence_flags) 0 smp.s_nodes
      in
      let d = flags s - flags p in
      if d > 0 then Registry.Window.add t.div_win ~now (float_of_int d));
  let div_flags = Registry.Window.sum t.div_win ~now in
  let acc =
    set_condition t ~now ~height:max_height Divergence_warning "cluster"
      ~active:((not s.s_digests_agree) || div_flags > 0.)
      ~evidence:(fun () ->
        Printf.sprintf "digests_agree=%b divergence_flags=%d/%.1fs"
          s.s_digests_agree (int_of_float div_flags) th.fail_window_s)
      acc
  in
  t.prev <- Some s;
  List.rev acc

let alerts t = List.rev t.log

let alert_count t = t.seq

let firing t =
  Hashtbl.fold
    (fun (id, subject) s acc -> if s.firing then (id, subject) :: acc else acc)
    t.states []
  |> List.sort compare
  |> List.filter_map (fun (id, subject) ->
         match detector_of_id id with
         | Some d -> Some (d, subject)
         | None -> None)

type summary = {
  sm_detector : detector;
  sm_firing : int;
  sm_fires : int;
  sm_clears : int;
  sm_last_time : float;
  sm_last_height : int;
}

let summaries t =
  List.map
    (fun d ->
      let id = detector_id d in
      let cells =
        Hashtbl.fold
          (fun (id', _) s acc -> if String.equal id' id then s :: acc else acc)
          t.states []
      in
      List.fold_left
        (fun sm s ->
          {
            sm with
            sm_firing = (sm.sm_firing + if s.firing then 1 else 0);
            sm_fires = sm.sm_fires + s.fires;
            sm_clears = sm.sm_clears + s.clears;
            sm_last_time = Float.max sm.sm_last_time s.last_time;
            sm_last_height = max sm.sm_last_height s.last_height;
          })
        {
          sm_detector = d;
          sm_firing = 0;
          sm_fires = 0;
          sm_clears = 0;
          sm_last_time = 0.;
          sm_last_height = 0;
        }
        cells)
    all_detectors

let fires t d =
  (List.find (fun sm -> sm.sm_detector = d) (summaries t)).sm_fires

let stream t = String.concat "\n" (List.map render_alert (alerts t))
