(** Deterministic tracing core.

    Spans and events are keyed by (node, track, name) plus an optional
    async id (transaction / block identifier). Timestamps come exclusively
    from the [now] closure the tracer is created with — in the simulator
    that closure reads {!Brdb_sim.Clock.now} — so for equal seeds a run
    produces a byte-identical event stream (see {!Export}).

    The tracer is an append-only sink: recording an event never draws from
    an {!Brdb_sim.Rng}, never schedules clock work, and is invisible to
    committed state, hashes and the cost model. The {!null} tracer is
    disabled; every emitter checks {!enabled} first, so tracing is
    zero-cost when off. *)

type value = I of int | F of float | S of string | B of bool

type kind =
  | Complete  (** a span: [ts .. ts + dur] ("X" in Chrome trace_event) *)
  | Instant  (** a point event ("i") *)
  | Async_begin  (** start of an id-keyed lifecycle ("b") *)
  | Async_instant  (** milestone inside an id-keyed lifecycle ("n") *)
  | Async_end  (** end of an id-keyed lifecycle ("e") *)
  | Counter  (** a sampled counter value ("C") *)

type event = {
  seq : int;  (** emission order, dense from 0 *)
  ts : float;  (** simulated seconds *)
  dur : float;  (** span duration in seconds; 0 for non-spans *)
  node : string;  (** process lane: node name, ["client"], ["cluster"] *)
  track : string;  (** thread lane within the node *)
  cat : string;
  kind : kind;
  name : string;
  id : string;  (** async correlation id (txn id); [""] otherwise *)
  span : string;
      (** span-context id this event establishes (e.g. ["block/7"]);
          deterministic — derived from transaction ids and block heights,
          never from emission order — so equal runs produce equal ids.
          [""] when the event opens no context. *)
  parent : string;
      (** parent span context (strong causal edge: this work happened
          {e inside} the parent); [""] for roots *)
  follows : string;
      (** follows-from edge (weak causal link across lifecycles: e.g. a
          validate event follows the submit span of its transaction) *)
  args : (string * value) list;
}

type t

(** Disabled sink: all emitters are no-ops. *)
val null : t

(** [create ~now ()] — an enabled tracer whose timestamps come from
    [now] (bind it to [Brdb_sim.Clock.now clock]). *)
val create : ?now:(unit -> float) -> unit -> t

val enabled : t -> bool

(** Current timestamp as the tracer sees it ([0.] on {!null}). *)
val now : t -> float

(** [complete t ~node ~name ~ts ~dur ()] records a span covering
    [ts .. ts + dur]; [ts] may lie in the past (block phases are emitted
    on completion and back-dated by their modeled cost). [?span] names
    the context this span establishes; [?parent] / [?follows] link it
    into the causal graph (see {!event}). *)
val complete :
  t ->
  node:string ->
  ?track:string ->
  ?cat:string ->
  name:string ->
  ts:float ->
  dur:float ->
  ?span:string ->
  ?parent:string ->
  ?follows:string ->
  ?args:(string * value) list ->
  unit ->
  unit

val instant :
  t ->
  node:string ->
  ?track:string ->
  ?cat:string ->
  name:string ->
  ?ts:float ->
  ?span:string ->
  ?parent:string ->
  ?follows:string ->
  ?args:(string * value) list ->
  unit ->
  unit

(** Async events correlate across nodes by [(cat, id, name)] — use the
    transaction id to stitch submit → ordered → decided into one
    lifecycle span. *)
val async_begin :
  t ->
  node:string ->
  ?track:string ->
  ?cat:string ->
  name:string ->
  id:string ->
  ?ts:float ->
  ?span:string ->
  ?parent:string ->
  ?follows:string ->
  ?args:(string * value) list ->
  unit ->
  unit

val async_instant :
  t ->
  node:string ->
  ?track:string ->
  ?cat:string ->
  name:string ->
  id:string ->
  ?ts:float ->
  ?span:string ->
  ?parent:string ->
  ?follows:string ->
  ?args:(string * value) list ->
  unit ->
  unit

val async_end :
  t ->
  node:string ->
  ?track:string ->
  ?cat:string ->
  name:string ->
  id:string ->
  ?ts:float ->
  ?span:string ->
  ?parent:string ->
  ?follows:string ->
  ?args:(string * value) list ->
  unit ->
  unit

val counter :
  t -> node:string -> ?track:string -> name:string -> value:float -> ?ts:float -> unit -> unit

(** Events in emission order. *)
val events : t -> event list

val count : t -> int

val clear : t -> unit
