(** Abort-reason taxonomy.

    Collapses {!Brdb_txn.Txn.abort_reason} into the classes the paper's
    evaluation (and Ports & Grittner's SSI tuning methodology) reason
    about. The class is a node-local judgement: for the same transaction
    one node may see an rw-antidependency while another sees a stale read
    (CLAUDE.md gotcha) — only the commit/abort {i decision} and write-set
    hash must agree across nodes, which {!Brdb_core.Chaos} now checks. *)

type t =
  | Rw_antidependency
      (** plain SSI dangerous structure (pivot-committed-out /
          dangerous-structure) *)
  | Block_aware_commit
      (** abort-during-commit by the block-aware rules of Table 2 *)
  | Lost_update  (** first-committer-wins ww conflict *)
  | Stale_read
  | Phantom_read
  | Uniqueness  (** duplicate primary key *)
  | Duplicate_txid
  | Index_restriction  (** missing index / blind update under strict reads *)
  | Contract_failure  (** contract raised [Api.Failed] *)
  | Deploy_conflict  (** contract updated during execution (§3.7) *)
  | Chaos_induced  (** rollback forced by crash replay or ordering clamp *)
  | Admission
      (** failed the client-side pre-submit admission check (ISSUE 10
          "Early Fail Tx"): a pinned read version was superseded, or the
          session outlived its height window — the transaction never
          reached the orderer, so {!of_reason} never returns this class;
          counts surface via [sys.clients] and the [admission.*] metrics *)

val all : t list

val to_string : t -> string

val of_reason : Brdb_txn.Txn.abort_reason -> t

(** {!Brdb_ssi.Rules} rule names that classify as {!Block_aware_commit}
    (the Table 2 abort-during-commit rules); any other [Ssi_conflict]
    rule is {!Rw_antidependency}. *)
val block_aware_rules : string list

(** [Contract_error] messages the node layer uses to mark fault-plane
    rollbacks; these class as {!Chaos_induced}. *)
val chaos_markers : string list
