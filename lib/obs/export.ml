(* Both exporters format every number with a fixed printf spec, so two
   tracers holding equal event lists render byte-identical output — the
   property the chaos determinism tests pin down. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_value buf = function
  | Trace.I i -> Buffer.add_string buf (string_of_int i)
  | Trace.F f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | Trace.S s -> escape buf s
  | Trace.B b -> Buffer.add_string buf (if b then "true" else "false")

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    args;
  Buffer.add_char buf '}'

let kind_tag = function
  | Trace.Complete -> "X"
  | Trace.Instant -> "i"
  | Trace.Async_begin -> "b"
  | Trace.Async_instant -> "n"
  | Trace.Async_end -> "e"
  | Trace.Counter -> "C"

(* ------------------------------------------------------------- JSONL *)

let jsonl_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"seq\":%d,\"ts\":%.9f,\"dur\":%.9f,\"node\":" e.seq
           e.ts e.dur);
      escape buf e.node;
      Buffer.add_string buf ",\"track\":";
      escape buf e.track;
      Buffer.add_string buf ",\"cat\":";
      escape buf e.cat;
      Buffer.add_string buf ",\"ph\":";
      escape buf (kind_tag e.kind);
      Buffer.add_string buf ",\"name\":";
      escape buf e.name;
      if e.id <> "" then (
        Buffer.add_string buf ",\"id\":";
        escape buf e.id);
      if e.span <> "" then (
        Buffer.add_string buf ",\"span\":";
        escape buf e.span);
      if e.parent <> "" then (
        Buffer.add_string buf ",\"parent\":";
        escape buf e.parent);
      if e.follows <> "" then (
        Buffer.add_string buf ",\"follows\":";
        escape buf e.follows);
      if e.args <> [] then (
        Buffer.add_string buf ",\"args\":";
        add_args buf e.args);
      Buffer.add_string buf "}\n")
    events;
  Buffer.contents buf

(* ------------------------------------------------ causal projection *)

(* The per-node causal skeleton: the block/txn events of one node with
   everything node-local or timing-dependent stripped. Every replica
   processes the same block stream, so this projection is byte-identical
   across nodes (modulo the node name, which is normalized away):
   - ts/dur/seq dropped — blocks complete at node-local times;
   - abort "reason"/"class"/"detail" args dropped — reasons are
     node-local (CLAUDE.md), only the decision (= the event name) must
     match;
   - "missing" dropped — EO missing-transaction counts are node-local;
   - replayed events deduplicated — §3.6 recovery re-accounts a repaired
     block, re-emitting the same causal content. *)
let causal_keys = [ "tx"; "height"; "txs" ]

let causal_line buf (e : Trace.event) =
  Buffer.add_string buf "{\"node\":\"node\",\"track\":";
  escape buf e.track;
  Buffer.add_string buf ",\"cat\":";
  escape buf e.cat;
  Buffer.add_string buf ",\"ph\":";
  escape buf (kind_tag e.kind);
  Buffer.add_string buf ",\"name\":";
  escape buf e.name;
  if e.id <> "" then (
    Buffer.add_string buf ",\"id\":";
    escape buf e.id);
  if e.span <> "" then (
    Buffer.add_string buf ",\"span\":";
    escape buf e.span);
  if e.parent <> "" then (
    Buffer.add_string buf ",\"parent\":";
    escape buf e.parent);
  if e.follows <> "" then (
    Buffer.add_string buf ",\"follows\":";
    escape buf e.follows);
  (let args = List.filter (fun (k, _) -> List.mem k causal_keys) e.args in
   if args <> [] then (
     Buffer.add_string buf ",\"args\":";
     add_args buf args));
  Buffer.add_string buf "}\n"

let causal_jsonl ~node events =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (e : Trace.event) ->
      if e.node = node && (e.track = "block" || e.track = "txn") then begin
        let line =
          let b = Buffer.create 128 in
          causal_line b e;
          Buffer.contents b
        in
        if not (Hashtbl.mem seen line) then begin
          Hashtbl.replace seen line ();
          Buffer.add_string buf line
        end
      end)
    events;
  Buffer.contents buf

(* ----------------------------------------------- Chrome trace_event *)

(* chrome://tracing / Perfetto expect integer pid/tid; map each node to a
   pid and each (node, track) to a tid, and name both with "M" metadata
   events. Assignment is by sorted name, independent of event order. *)
let chrome_string events =
  let nodes =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.node) events)
  in
  let pid node =
    let rec idx i = function
      | [] -> 0
      | n :: _ when n = node -> i
      | _ :: tl -> idx (i + 1) tl
    in
    1 + idx 0 nodes
  in
  let tracks =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> (e.node, e.track)) events)
  in
  let tid node track =
    let rec idx i = function
      | [] -> 0
      | (n, tr) :: _ when n = node && tr = track -> i
      | (n, _) :: tl when n = node -> idx (i + 1) tl
      | _ :: tl -> idx i tl
    in
    1 + idx 0 tracks
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let item () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n"
  in
  let metadata ~name ~p ~t ~label =
    item ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"args\":{\"name\":"
         p t name);
    escape buf label;
    Buffer.add_string buf "}}"
  in
  List.iter
    (fun node -> metadata ~name:"process_name" ~p:(pid node) ~t:0 ~label:node)
    nodes;
  List.iter
    (fun (node, track) ->
      metadata ~name:"thread_name" ~p:(pid node) ~t:(tid node track)
        ~label:track)
    tracks;
  List.iter
    (fun (e : Trace.event) ->
      item ();
      Buffer.add_string buf "{\"name\":";
      escape buf e.name;
      Buffer.add_string buf ",\"cat\":";
      escape buf (if e.cat = "" then "default" else e.cat);
      Buffer.add_string buf
        (Printf.sprintf ",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
           (kind_tag e.kind) (pid e.node)
           (tid e.node e.track)
           (e.ts *. 1e6));
      (match e.kind with
      | Trace.Complete ->
          Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" (e.dur *. 1e6))
      | Trace.Instant -> Buffer.add_string buf ",\"s\":\"t\""
      | Trace.Async_begin | Trace.Async_instant | Trace.Async_end ->
          Buffer.add_string buf ",\"id\":";
          escape buf e.id
      | Trace.Counter -> ());
      (* Chrome's args panel is the only place the viewer shows free-form
         data, so causal edges ride along there. *)
      let ctx =
        List.filter_map
          (fun (k, s) -> if s = "" then None else Some (k, Trace.S s))
          [ ("span", e.span); ("parent", e.parent); ("follows", e.follows) ]
      in
      let args = e.args @ ctx in
      if args <> [] then (
        Buffer.add_string buf ",\"args\":";
        add_args buf args);
      Buffer.add_string buf "}")
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
