(** Attribution profiler (ISSUE 7, tentpole c): folds the causal span
    tree of a trace into a deterministic flame-style aggregate.

    Events are grouped by their {e causal path} — the chain of span-kind
    segments from the root context to the event, e.g.
    [order;block;exec;validate]. Segments are the prefix of the span
    context id before ['/'] ([block/7] -> [block]), so all heights fold
    into one row per phase; events without a context fall back to their
    name. Complete spans contribute their simulated duration; instants
    contribute event counts. Self time is a path's total minus its direct
    children — for a per-node fold of block processing this surfaces the
    constant block overhead ([bpt - bet - bct], §5's block_const) as the
    [block] row's self time.

    Determinism: output rows are sorted by path and derived only from the
    event list, so equal traces fold to equal aggregates (the property
    [sys.spans] inherits). *)

type row = {
  p_path : string;  (** [;]-joined causal path, root first *)
  p_depth : int;  (** segments - 1; render indentation *)
  p_events : int;
  p_total_s : float;  (** summed span durations (simulated seconds) *)
  p_self_s : float;
      (** total minus direct children, clamped at 0 — children replicated
          on several nodes can exceed a cluster-wide parent *)
}

(** [fold ?node events] — aggregate rows sorted by path. With [?node],
    only that node's events are retained and parent links are resolved
    within them (cross-node parents root new trees). *)
val fold : ?node:string -> Trace.event list -> row list

(** Fixed-width flame-style table (path indented by depth, ms columns);
    byte-deterministic for equal inputs. *)
val render : row list -> string
