module Txn = Brdb_txn.Txn

type t =
  | Rw_antidependency
  | Block_aware_commit
  | Lost_update
  | Stale_read
  | Phantom_read
  | Uniqueness
  | Duplicate_txid
  | Index_restriction
  | Contract_failure
  | Deploy_conflict
  | Chaos_induced
  | Admission

let all =
  [
    Rw_antidependency;
    Block_aware_commit;
    Lost_update;
    Stale_read;
    Phantom_read;
    Uniqueness;
    Duplicate_txid;
    Index_restriction;
    Contract_failure;
    Deploy_conflict;
    Chaos_induced;
    Admission;
  ]

let to_string = function
  | Rw_antidependency -> "rw-antidependency"
  | Block_aware_commit -> "block-aware-commit"
  | Lost_update -> "lost-update"
  | Stale_read -> "stale-read"
  | Phantom_read -> "phantom-read"
  | Uniqueness -> "uniqueness"
  | Duplicate_txid -> "duplicate-txid"
  | Index_restriction -> "index-restriction"
  | Contract_failure -> "contract-failure"
  | Deploy_conflict -> "deploy-conflict"
  | Chaos_induced -> "chaos-induced"
  | Admission -> "admission"

(* Rule names come from Brdb_ssi.Rules: the plain SSI detector (§2
   background, Cahill/Ports-Grittner dangerous structures) vs the
   block-aware abort-during-commit rules of Table 2. *)
let block_aware_rules =
  [
    "committed-out-conflict";
    "near-cross-block";
    "rw-cycle";
    "far-committed";
    "same-block-later";
    "far-cross-block";
  ]

(* Node_core marks rollbacks forced by the fault plane (crash replay,
   snapshot clamping after an out-of-order delivery) with these reason
   strings; they are chaos-induced, not workload conflicts. *)
let chaos_markers = [ "crash rollback"; "snapshot clamped by ordering" ]

let of_reason = function
  | Txn.Ssi_conflict rule ->
      if List.mem rule block_aware_rules then Block_aware_commit
      else Rw_antidependency
  | Txn.Ww_conflict _ -> Lost_update
  | Txn.Stale_read -> Stale_read
  | Txn.Phantom_read -> Phantom_read
  | Txn.Duplicate_key _ -> Uniqueness
  | Txn.Duplicate_txid -> Duplicate_txid
  | Txn.Missing_index _ | Txn.Blind_update _ -> Index_restriction
  | Txn.Contract_error msg ->
      if List.mem msg chaos_markers then Chaos_induced else Contract_failure
  | Txn.Update_conflict_on_deploy -> Deploy_conflict
