type row = {
  p_path : string;
  p_depth : int;
  p_events : int;
  p_total_s : float;
  p_self_s : float;
}

let prefix s =
  match String.index_opt s '/' with None -> s | Some i -> String.sub s 0 i

let segment (e : Trace.event) =
  if e.span <> "" then prefix e.span
  else if e.name <> "" then e.name
  else e.cat

let fold ?node events =
  let events =
    match node with
    | None -> events
    | Some n -> List.filter (fun (e : Trace.event) -> e.node = n) events
  in
  (* Parent edges among the retained events only: a span whose parent
     lives on another node (e.g. a peer's block span under the orderer's
     order span) roots its own tree in a per-node fold. *)
  let parent_of = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.span <> "" && e.parent <> "" && not (Hashtbl.mem parent_of e.span)
      then Hashtbl.replace parent_of e.span e.parent)
    events;
  let rec ancestry depth id =
    (* root-first list of ancestor segments; depth cap guards cycles *)
    if id = "" || depth > 16 then []
    else
      let up =
        match Hashtbl.find_opt parent_of id with
        | Some p -> ancestry (depth + 1) p
        | None -> []
      in
      up @ [ prefix id ]
  in
  let path (e : Trace.event) =
    let own = segment e in
    let anc =
      if e.span <> "" then ancestry 0 e.span
      else if e.parent <> "" then ancestry 0 e.parent @ [ own ]
      else [ own ]
    in
    String.concat ";" (if anc = [] then [ own ] else anc)
  in
  let agg = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      let p = path e in
      let count, total =
        Option.value (Hashtbl.find_opt agg p) ~default:(0, 0.)
      in
      Hashtbl.replace agg p (count + 1, total +. e.dur))
    events;
  let paths =
    List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) agg [])
  in
  let child_sum = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match String.rindex_opt p ';' with
      | None -> ()
      | Some i ->
          let up = String.sub p 0 i in
          let _, total = Hashtbl.find agg p in
          Hashtbl.replace child_sum up
            (total
            +. Option.value (Hashtbl.find_opt child_sum up) ~default:0.))
    paths;
  List.map
    (fun p ->
      let count, total = Hashtbl.find agg p in
      let children = Option.value (Hashtbl.find_opt child_sum p) ~default:0. in
      {
        p_path = p;
        p_depth = List.length (String.split_on_char ';' p) - 1;
        p_events = count;
        p_total_s = total;
        p_self_s = Float.max 0. (total -. children);
      })
    paths

let render rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-48s %8s %12s %12s\n" "path" "events" "total_ms"
       "self_ms");
  List.iter
    (fun r ->
      let last =
        match String.rindex_opt r.p_path ';' with
        | None -> r.p_path
        | Some i -> String.sub r.p_path (i + 1) (String.length r.p_path - i - 1)
      in
      let label = String.make (2 * r.p_depth) ' ' ^ last in
      Buffer.add_string buf
        (Printf.sprintf "%-48s %8d %12.3f %12.3f\n" label r.p_events
           (r.p_total_s *. 1000.) (r.p_self_s *. 1000.)))
    rows;
  Buffer.contents buf
