module Value = Brdb_storage.Value
module Schema = Brdb_storage.Schema

let col ?(pk = false) name ty =
  { Schema.name; ty; not_null = false; primary_key = pk }

let metrics_columns =
  let open Brdb_sql.Ast in
  [
    col "node" T_text;
    col "name" T_text;
    col "kind" T_text;
    col "n" T_int;
    col "value" T_float;
    col "vmin" T_float;
    col "vmax" T_float;
    col "p50" T_float;
    col "p95" T_float;
  ]

let metric_row (e : Registry.entry) =
  [|
    Value.Text e.Registry.e_node;
    Value.Text e.Registry.e_name;
    Value.Text e.Registry.e_kind;
    Value.Int e.Registry.e_count;
    Value.Float e.Registry.e_value;
    Value.Float e.Registry.e_min;
    Value.Float e.Registry.e_max;
    Value.Float e.Registry.e_p50;
    Value.Float e.Registry.e_p95;
  |]

let metric_rows entries = List.map metric_row entries

let nodes_columns =
  let open Brdb_sql.Ast in
  [
    col ~pk:true "node" T_text;
    col "height" T_int;
    col "inbox" T_int;
    col "crashed" T_bool;
    col "fetch_requests" T_int;
    col "fetched_blocks" T_int;
    col "blocks_rejected" T_int;
    col "crashes" T_int;
    col "restarts" T_int;
  ]

let node_row ~node ~height ~inbox ~crashed ~fetch_requests ~fetched_blocks
    ~blocks_rejected ~crashes ~restarts =
  [|
    Value.Text node;
    Value.Int height;
    Value.Int inbox;
    Value.Bool crashed;
    Value.Int fetch_requests;
    Value.Int fetched_blocks;
    Value.Int blocks_rejected;
    Value.Int crashes;
    Value.Int restarts;
  |]

let alerts_columns =
  let open Brdb_sql.Ast in
  [
    col ~pk:true "seq" T_int;
    col "ts" T_float;
    col "height" T_int;
    col "transition" T_text;
    col "detector" T_text;
    col "severity" T_text;
    col "subject" T_text;
    col "evidence" T_text;
  ]

let alert_row (a : Health.alert) =
  [|
    Value.Int a.Health.al_seq;
    Value.Float a.Health.al_time;
    Value.Int a.Health.al_height;
    Value.Text (Health.transition_name a.Health.al_transition);
    Value.Text (Health.detector_id a.Health.al_detector);
    Value.Text (Health.severity_name a.Health.al_severity);
    Value.Text a.Health.al_subject;
    Value.Text a.Health.al_evidence;
  |]

let detectors_columns =
  let open Brdb_sql.Ast in
  [
    col ~pk:true "detector" T_text;
    col "severity" T_text;
    col "rule" T_text;
    col "firing" T_int;
    col "fires" T_int;
    col "clears" T_int;
    col "last_ts" T_float;
    col "last_height" T_int;
  ]

let detector_row (s : Health.summary) =
  [|
    Value.Text (Health.detector_id s.Health.sm_detector);
    Value.Text (Health.severity_name (Health.severity_of s.Health.sm_detector));
    Value.Text (Health.describe s.Health.sm_detector);
    Value.Int s.Health.sm_firing;
    Value.Int s.Health.sm_fires;
    Value.Int s.Health.sm_clears;
    Value.Float s.Health.sm_last_time;
    Value.Int s.Health.sm_last_height;
  |]

let clients_columns =
  let open Brdb_sql.Ast in
  [
    col ~pk:true "session" T_text;
    col "user" T_text;
    col "peer" T_text;
    col "status" T_text;
    col "pinned_height" T_int;
    col "reads_pinned" T_int;
    col "submitted" T_int;
    col "early_aborts" T_int;
    col "receipts_verified" T_int;
  ]

let client_row ~session ~user ~peer ~status ~pinned_height ~reads_pinned
    ~submitted ~early_aborts ~receipts_verified =
  [|
    Value.Text session;
    Value.Text user;
    Value.Text peer;
    Value.Text status;
    Value.Int pinned_height;
    Value.Int reads_pinned;
    Value.Int submitted;
    Value.Int early_aborts;
    Value.Int receipts_verified;
  |]
