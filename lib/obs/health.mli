(** Deterministic streaming health plane (ISSUE 9, DESIGN.md §15).

    A cluster-level anomaly-detection engine: the deployment layer feeds
    it one {!sample} per tick of the simulated clock (node heights and
    fault counters, consensus churn, decision totals, digest agreement)
    and each windowed rule emits edge-triggered {!alert} events — [Fire]
    when its condition starts holding, [Clear] when it stops.

    Determinism is the design invariant: the engine never reads a clock
    or rng — every input arrives in the sample, windows ({!Registry.Window})
    and EWMAs ({!Registry.Ewma}) are driven by the sample's own
    timestamp, and per-node rules walk [s_nodes] in the caller's
    (deterministic) order. Ticked at fixed sim-clock intervals over
    state that is itself a pure function of (block stream, seed), the
    alert log — and {!stream}, its canonical byte rendering — is too:
    byte-identical across nodes (all nodes serve the one shared engine,
    like [sys.nodes]) and across runs of the same seed. *)

type severity = Info | Warning | Critical

val severity_name : severity -> string

(** The detector set, one per §3.4/Table-2 failure signal the paper's
    operator would watch by hand:
    - [Ordering_stall]: no block cut while client work is pending
      (consensus liveness under Raft/BFT, §4.3/§4.4);
    - [View_change_storm]: election / view-change churn beyond the
      startup election (§4.3 leader changes, §4.4 view changes);
    - [Abort_spike]: EWMA of the abort fraction over the Table-2
      taxonomy crossing a ratio threshold;
    - [Replication_lag]: a peer's height gap to the cluster tip
      sustained over consecutive ticks (§3.6 catch-up failing to keep
      up);
    - [Snapshot_failure]: corrupted-chunk streaks or failed snapshot
      installs (§11 bootstrap under attack);
    - [Auth_rejection_burst]: blocks refused by §4.4 authenticated
      delivery (signature/hash tamper, equivocation, broken linkage);
    - [Divergence_warning]: state digests disagreeing at a common
      height, or a node's checkpoint monitor flagging a mismatch. *)
type detector =
  | Ordering_stall
  | View_change_storm
  | Abort_spike
  | Replication_lag
  | Snapshot_failure
  | Auth_rejection_burst
  | Divergence_warning

val all_detectors : detector list

(** Stable string id (["ordering_stall"], …) used in sys.alerts rows,
    metrics names and the chaos coverage matrix. *)
val detector_id : detector -> string

val detector_of_id : string -> detector option

val severity_of : detector -> severity

(** One-line rule description (sys.detectors). *)
val describe : detector -> string

type transition = Fire | Clear

val transition_name : transition -> string

type alert = {
  al_seq : int;  (** 1-based position in the deployment's alert log *)
  al_time : float;  (** simulated seconds at emission *)
  al_height : int;  (** cluster tip height at emission *)
  al_detector : detector;
  al_severity : severity;
  al_transition : transition;
  al_subject : string;  (** offending node, or ["cluster"]/["ordering"] *)
  al_evidence : string;  (** rule-specific evidence, canonical format *)
}

(** Canonical single-line rendering — the bytes compared across nodes
    and runs. *)
val render_alert : alert -> string

(** Rule thresholds; see {!default_thresholds} for the calibrated
    defaults (chosen so fault-free chaos runs stay silent across seeds —
    the qcheck false-positive-freedom property). *)
type thresholds = {
  stall_s : float;  (** fire when no cut for this long with work pending *)
  storm_window_s : float;  (** churn window *)
  storm_threshold : int;  (** churn events in window that fire *)
  ignore_first_election : bool;
      (** don't count the startup election a Raft cluster needs *)
  abort_alpha : float;  (** EWMA smoothing for the abort fraction *)
  abort_ratio : float;  (** EWMA level that fires (clears at half) *)
  abort_window_s : float;  (** window for the decided-count gate *)
  abort_min_decided : int;  (** min decisions in window before firing *)
  lag_blocks : int;  (** height gap that counts as lagging *)
  lag_sustain : int;  (** consecutive lagging ticks before firing *)
  fail_window_s : float;  (** window for corruption/rejection bursts *)
  corrupt_streak : int;  (** corrupted chunks in window that fire *)
  reject_burst : int;  (** rejected blocks in window that fire *)
}

val default_thresholds : thresholds

(** Per-node slice of a sample. All counters are cumulative (the engine
    differentiates internally). *)
type node_sample = {
  ns_node : string;
  ns_height : int;
  ns_crashed : bool;
  ns_blocks_rejected : int;
  ns_chunks_corrupted : int;
  ns_install_failures : int;
  ns_divergence_flags : int;  (** checkpoint-monitor mismatch count *)
}

(** One engine tick's worth of cluster state. Counters cumulative. *)
type sample = {
  s_time : float;  (** simulated time of the tick *)
  s_nodes : node_sample list;  (** in deterministic (peer list) order *)
  s_blocks_cut : int;  (** total blocks cut by the ordering service *)
  s_pending : int;
      (** work the ordering service holds but has not cut (its cutter
          backlog) — the stall clock only runs while this is positive *)
  s_decided : int;
  s_aborted : int;  (** decided as aborted or rejected *)
  s_elections : int;  (** Raft elections won (cumulative) *)
  s_view_changes : int;  (** BFT view changes (cumulative) *)
  s_digests_agree : bool;  (** state digests equal at the common height *)
  s_auth_rejected : int;
      (** forged submissions dropped by cut-time batch signature
          verification across the ordering service (ISSUE 10),
          cumulative; drives the ["ordering"]-subject
          {!Auth_rejection_burst} rule *)
}

type t

val create : ?thresholds:thresholds -> unit -> t

(** Evaluate every rule against the next sample; returns the transitions
    emitted by this tick, in deterministic order. The first sample only
    seeds baselines (nothing can fire). *)
val observe : t -> sample -> alert list

(** Full alert log, oldest first. *)
val alerts : t -> alert list

(** Total transitions emitted ([= List.length (alerts t)]). *)
val alert_count : t -> int

(** Currently-firing (detector, subject) pairs, sorted. *)
val firing : t -> (detector * string) list

(** sys.detectors row material: per-detector aggregate over subjects. *)
type summary = {
  sm_detector : detector;
  sm_firing : int;  (** subjects currently firing *)
  sm_fires : int;
  sm_clears : int;
  sm_last_time : float;  (** last transition (0. if none) *)
  sm_last_height : int;
}

(** One summary per detector, in {!all_detectors} order. *)
val summaries : t -> summary list

(** Fire transitions recorded for one detector. *)
val fires : t -> detector -> int

(** The whole alert log as canonical bytes ({!render_alert} lines). *)
val stream : t -> string
