open Brdb_util

type t = { blocks : Block.t Vec.t }

type error = [ `Out_of_sequence | `Broken_chain | `Bad_block ]

let create () = { blocks = Vec.create () }

let height t = Vec.length t.blocks

let last t = Vec.last t.blocks

let append t (b : Block.t) =
  if b.Block.height <> height t + 1 then Error `Out_of_sequence
  else if not (Block.chains_from b ~prev:(last t)) then Error `Broken_chain
  else if
    not
      (String.equal b.Block.hash
         (Block.compute_hash ~height:b.Block.height ~txs:b.Block.txs
            ~metadata:b.Block.metadata ~prev_hash:b.Block.prev_hash))
  then Error `Bad_block
  else begin
    ignore (Vec.push t.blocks b);
    Ok ()
  end

let get t h =
  if h >= 1 && h <= Vec.length t.blocks then Some (Vec.get t.blocks (h - 1)) else None

let iter t f = Vec.iter f t.blocks

let audit t registry =
  let bad = ref None in
  let prev = ref None in
  Vec.iter
    (fun b ->
      if !bad = None then begin
        if not (Block.chains_from b ~prev:!prev && Block.verify registry b) then
          bad := Some b.Block.height;
        prev := Some b
      end)
    t.blocks;
  match !bad with None -> Ok () | Some h -> Error h

let restore t blocks =
  let scratch = create () in
  let rec load = function
    | [] -> Ok ()
    | b :: rest -> (
        match append scratch b with
        | Ok () -> load rest
        | Error _ ->
            Error (Printf.sprintf "block %d does not chain" b.Block.height))
  in
  match load blocks with
  | Error _ as e -> e
  | Ok () ->
      Vec.clear t.blocks;
      Vec.iter (fun b -> ignore (Vec.push t.blocks b)) scratch.blocks;
      Ok ()

let tamper_for_test t h b =
  if h >= 1 && h <= Vec.length t.blocks then Vec.set t.blocks (h - 1) b
