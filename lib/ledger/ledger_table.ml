open Brdb_storage

type entry = { e_txid : int; e_gid : string; e_user : string; e_query : string }

let ledger catalog =
  match Catalog.find catalog Catalog.ledger_table with
  | Some t -> t
  | None -> failwith "internal: pgledger missing"

(* Column positions in the pgledger schema. *)
let c_txid = 0
let c_blocknumber = 2
let c_status = 5

let system_insert table ~height values =
  let v = Table.insert_version table ~xmin:0 values in
  v.Version.creator_block <- height;
  v

let record_txs catalog ~height ~time entries =
  let table = ledger catalog in
  List.iter
    (fun e ->
      ignore
        (system_insert table ~height
           [|
             Value.Int e.e_txid;
             Value.Text e.e_gid;
             Value.Int height;
             Value.Text e.e_user;
             Value.Text e.e_query;
             Value.Null;
             Value.Int time;
           |]))
    entries

let live_row table ~txid f =
  Table.pk_lookup table (Value.Int txid) (fun v ->
      if
        (not v.Version.xmin_aborted)
        && v.Version.creator_block <> Version.unset_block
        && v.Version.deleter_block = Version.unset_block
      then f v)

let record_statuses catalog ~height statuses =
  let table = ledger catalog in
  List.iter
    (fun (txid, status) ->
      live_row table ~txid (fun v ->
          (* MVCC update by the system: retire the NULL-status version and
             append one carrying the outcome. *)
          let values = Array.copy v.Version.values in
          values.(c_status) <- Value.Text status;
          Table.mark_deleted table v ~xmax:0 ~height;
          ignore (system_insert table ~height values)))
    statuses

let last_recorded_block catalog =
  let best = ref 0 in
  Table.iter_versions (ledger catalog) (fun v ->
      if not v.Version.xmin_aborted then
        match v.Version.values.(c_blocknumber) with
        | Value.Int h when h > !best -> best := h
        | _ -> ());
  !best

let block_txs catalog ~height =
  let acc = Hashtbl.create 16 in
  Table.iter_versions (ledger catalog) (fun v ->
      if
        (not v.Version.xmin_aborted)
        && v.Version.deleter_block = Version.unset_block
        && v.Version.values.(c_blocknumber) = Value.Int height
      then
        match (v.Version.values.(c_txid), v.Version.values.(c_status)) with
        | Value.Int txid, Value.Text s -> Hashtbl.replace acc txid (Some s)
        | Value.Int txid, _ -> Hashtbl.replace acc txid None
        | _ -> ());
  Hashtbl.fold (fun txid s l -> (txid, s) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let erase_block catalog ~height =
  let table = ledger catalog in
  Table.iter_versions table (fun v ->
      if v.Version.values.(c_blocknumber) = Value.Int height then
        Table.mark_aborted table v)
