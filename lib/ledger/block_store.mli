(** Append-only block store (the [pgBlockstore] analogue).

    Blocks must arrive in sequence and chain correctly; [append] rejects
    gaps, duplicates and hash-chain breaks. {!audit} re-verifies the whole
    chain, which is how tampering by a malicious node is detected
    (§3.5 item 6). *)

type t

type error = [ `Out_of_sequence | `Broken_chain | `Bad_block ]

val create : unit -> t

val height : t -> int

val append : t -> Block.t -> (unit, error) result

val get : t -> int -> Block.t option

val last : t -> Block.t option

val iter : t -> (Block.t -> unit) -> unit

(** Full-chain integrity check; returns the height of the first bad block. *)
val audit : t -> Brdb_crypto.Identity.Registry.t -> (unit, int) result

(** [restore t blocks] replaces the store's contents with [blocks]
    (heights 1..n, snapshot install — DESIGN.md §11). The sequence is
    validated exactly as by repeated {!append}; on [Error] the store is
    unchanged. Signatures are not checked here — run {!audit} after. *)
val restore : t -> Block.t list -> (unit, string) result

(** Tamper with a stored block (testing §3.5 scenarios only). *)
val tamper_for_test : t -> int -> Block.t -> unit
