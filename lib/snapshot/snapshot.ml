open Brdb_storage
module Block = Brdb_ledger.Block
module Block_store = Brdb_ledger.Block_store
module Manager = Brdb_txn.Manager
module Registry = Brdb_contracts.Registry
module Identity = Brdb_crypto.Identity
module Schnorr = Brdb_crypto.Schnorr

type compaction = Archive | Pruned

let compaction_to_string = function Archive -> "archive" | Pruned -> "pruned"

type table_state = {
  ts_name : string;
  ts_columns : Schema.column list;
  ts_slots : Version.t option array;
  ts_indexes : (int * bool) list;
  ts_pruned : int;
}

type t = {
  height : int;
  state_digest : string;
  compaction : compaction;
  next_txid : int;
  globals : (string * int) list;
  contract_next_version : int;
  contracts : (string * int * string) list;
  blocks : Block.t list;
  tables : table_state list;
  extra : (string * string) list;
}

(* --- capture ----------------------------------------------------------------------- *)

(* Versions are copied so the snapshot shares no mutable state with the
   live heap (a same-process install must not alias the source node). *)
let copy_version (v : Version.t) =
  let c = Version.make ~vid:v.Version.vid ~xmin:v.Version.xmin (Array.copy v.Version.values) in
  c.Version.xmin_aborted <- v.Version.xmin_aborted;
  c.Version.creator_block <- v.Version.creator_block;
  c.Version.xmax <- v.Version.xmax;
  c.Version.deleter_block <- v.Version.deleter_block;
  c

(* A snapshot carries only settled state: in-flight versions (uncommitted,
   not aborted) are dropped — the transactions that created them are not
   carried either, and re-execute from their block on the installing node.
   [Pruned] additionally drops versions dead at the snapshot height
   (aborted, or deleted by a block <= height), except in [pgledger], whose
   history is the provenance/audit record. *)
let capture_table ~height ~compaction name (table : Table.t) =
  let prunable = compaction = Pruned && not (String.equal name Catalog.ledger_table) in
  let compacted = ref 0 in
  let slots =
    Array.map
      (fun slot ->
        match slot with
        | None -> None
        | Some (v : Version.t) ->
            if v.Version.creator_block = Version.unset_block && not v.Version.xmin_aborted
            then None
            else if
              prunable
              && (v.Version.xmin_aborted || v.Version.deleter_block <= height)
            then begin
              incr compacted;
              None
            end
            else Some (copy_version v))
      (Table.heap_slots table)
  in
  {
    ts_name = name;
    ts_columns = Array.to_list (Table.schema table).Schema.columns;
    ts_slots = slots;
    ts_indexes = Table.index_specs table;
    ts_pruned = Table.pruned_total table + !compacted;
  }

let capture ~catalog ~store ~contracts ~manager ~height ~state_digest ~compaction
    ?(extra = []) () =
  if height <> Block_store.height store then
    invalid_arg
      (Printf.sprintf "Snapshot.capture: height %d but store holds %d blocks" height
         (Block_store.height store));
  let blocks = ref [] in
  Block_store.iter store (fun b -> blocks := b :: !blocks);
  {
    height;
    state_digest;
    compaction;
    next_txid = Manager.next_txid manager;
    globals = Manager.export_globals manager;
    contract_next_version = Registry.next_version contracts;
    contracts = Registry.export_procedural contracts;
    blocks = List.rev !blocks;
    tables =
      List.map
        (fun name ->
          match Catalog.find catalog name with
          | Some table -> capture_table ~height ~compaction name table
          | None -> assert false)
        (Catalog.table_names catalog);
    extra = List.sort (fun (a, _) (b, _) -> String.compare a b) extra;
  }

(* --- canonical wire format ---------------------------------------------------------- *)

let magic = "brdbsnap-1"

let ty_char =
  let open Brdb_sql.Ast in
  function T_int -> "i" | T_float -> "f" | T_text -> "t" | T_bool -> "b"

let ty_of_char =
  let open Brdb_sql.Ast in
  function
  | "i" -> T_int
  | "f" -> T_float
  | "t" -> T_text
  | "b" -> T_bool
  | s -> Codec.fail (Printf.sprintf "unknown column type tag %S" s)

let w_column w (c : Schema.column) =
  Codec.str w c.Schema.name;
  Codec.str w (ty_char c.Schema.ty);
  Codec.bool w c.Schema.not_null;
  Codec.bool w c.Schema.primary_key

let r_column r =
  let name = Codec.r_str r in
  let ty = ty_of_char (Codec.r_str r) in
  let not_null = Codec.r_bool r in
  let primary_key = Codec.r_bool r in
  { Schema.name; ty; not_null; primary_key }

let w_sig w (s : Schnorr.signature) =
  Codec.str w (Int64.to_string s.Schnorr.e);
  Codec.str w (Int64.to_string s.Schnorr.s)

let r_sig r =
  let e = Codec.r_str r and s = Codec.r_str r in
  match (Int64.of_string_opt e, Int64.of_string_opt s) with
  | Some e, Some s -> { Schnorr.e; s }
  | _ -> Codec.fail "bad signature encoding"

let w_tx w (tx : Block.tx) =
  Codec.str w tx.Block.tx_id;
  Codec.str w tx.Block.tx_user;
  Codec.str w tx.Block.tx_contract;
  Codec.list w Codec.value tx.Block.tx_args;
  (match tx.Block.tx_snapshot with
  | None -> Codec.bool w false
  | Some h ->
      Codec.bool w true;
      Codec.int w h);
  w_sig w tx.Block.tx_signature

let r_tx r =
  let tx_id = Codec.r_str r in
  let tx_user = Codec.r_str r in
  let tx_contract = Codec.r_str r in
  let tx_args = Codec.r_list r Codec.r_value in
  let tx_snapshot = if Codec.r_bool r then Some (Codec.r_int r) else None in
  let tx_signature = r_sig r in
  { Block.tx_id; tx_user; tx_contract; tx_args; tx_snapshot; tx_signature }

let w_block w (b : Block.t) =
  Codec.int w b.Block.height;
  Codec.str w b.Block.metadata;
  Codec.str w b.Block.prev_hash;
  Codec.list w w_tx b.Block.txs;
  Codec.list w
    (fun w (name, sg) ->
      Codec.str w name;
      w_sig w sg)
    b.Block.signatures

let r_block r =
  let height = Codec.r_int r in
  let metadata = Codec.r_str r in
  let prev_hash = Codec.r_str r in
  let txs = Codec.r_list r r_tx in
  let signatures =
    Codec.r_list r (fun r ->
        let name = Codec.r_str r in
        (name, r_sig r))
  in
  (* The hash is recomputed, never trusted from the wire; the store's
     restore path re-validates the whole chain on install. *)
  let hash = Block.compute_hash ~height ~txs ~metadata ~prev_hash in
  { Block.height; txs; metadata; prev_hash; hash; signatures }

let w_slot w slot =
  match slot with
  | None -> Codec.bool w false
  | Some (v : Version.t) ->
      Codec.bool w true;
      Codec.int w v.Version.xmin;
      Codec.bool w v.Version.xmin_aborted;
      Codec.int w v.Version.creator_block;
      Codec.int w v.Version.xmax;
      Codec.int w v.Version.deleter_block;
      Codec.list w Codec.value (Array.to_list v.Version.values)

let r_slot ~vid r =
  if not (Codec.r_bool r) then None
  else begin
    let xmin = Codec.r_int r in
    let xmin_aborted = Codec.r_bool r in
    let creator_block = Codec.r_int r in
    let xmax = Codec.r_int r in
    let deleter_block = Codec.r_int r in
    let values = Array.of_list (Codec.r_list r Codec.r_value) in
    let v = Version.make ~vid ~xmin values in
    v.Version.xmin_aborted <- xmin_aborted;
    v.Version.creator_block <- creator_block;
    v.Version.xmax <- xmax;
    v.Version.deleter_block <- deleter_block;
    Some v
  end

let w_table w ts =
  Codec.str w ts.ts_name;
  Codec.list w w_column ts.ts_columns;
  Codec.int w (Array.length ts.ts_slots);
  Array.iter (w_slot w) ts.ts_slots;
  Codec.list w
    (fun w (column, unique) ->
      Codec.int w column;
      Codec.bool w unique)
    ts.ts_indexes;
  Codec.int w ts.ts_pruned

let r_table r =
  let ts_name = Codec.r_str r in
  let ts_columns = Codec.r_list r r_column in
  let n = Codec.r_int r in
  if n < 0 then Codec.fail "negative heap size";
  let ts_slots = Array.init n (fun vid -> r_slot ~vid r) in
  let ts_indexes =
    Codec.r_list r (fun r ->
        let column = Codec.r_int r in
        let unique = Codec.r_bool r in
        (column, unique))
  in
  let ts_pruned = Codec.r_int r in
  { ts_name; ts_columns; ts_slots; ts_indexes; ts_pruned }

let encode t =
  let w = Codec.writer () in
  Codec.str w magic;
  Codec.int w t.height;
  Codec.str w t.state_digest;
  Codec.str w (match t.compaction with Archive -> "A" | Pruned -> "P");
  Codec.int w t.next_txid;
  Codec.list w
    (fun w (gid, txid) ->
      Codec.str w gid;
      Codec.int w txid)
    t.globals;
  Codec.int w t.contract_next_version;
  Codec.list w
    (fun w (name, version, source) ->
      Codec.str w name;
      Codec.int w version;
      Codec.str w source)
    t.contracts;
  Codec.list w w_block t.blocks;
  Codec.list w w_table t.tables;
  Codec.list w
    (fun w (name, payload) ->
      Codec.str w name;
      Codec.str w payload)
    t.extra;
  Codec.contents w

let decode src =
  Codec.decode src (fun r ->
      if not (String.equal (Codec.r_str r) magic) then
        Codec.fail "bad snapshot magic";
      let height = Codec.r_int r in
      let state_digest = Codec.r_str r in
      let compaction =
        match Codec.r_str r with
        | "A" -> Archive
        | "P" -> Pruned
        | s -> Codec.fail (Printf.sprintf "unknown compaction tag %S" s)
      in
      let next_txid = Codec.r_int r in
      let globals =
        Codec.r_list r (fun r ->
            let gid = Codec.r_str r in
            let txid = Codec.r_int r in
            (gid, txid))
      in
      let contract_next_version = Codec.r_int r in
      let contracts =
        Codec.r_list r (fun r ->
            let name = Codec.r_str r in
            let version = Codec.r_int r in
            let source = Codec.r_str r in
            (name, version, source))
      in
      let blocks = Codec.r_list r r_block in
      let tables = Codec.r_list r r_table in
      let extra =
        Codec.r_list r (fun r ->
            let name = Codec.r_str r in
            let payload = Codec.r_str r in
            (name, payload))
      in
      {
        height;
        state_digest;
        compaction;
        next_txid;
        globals;
        contract_next_version;
        contracts;
        blocks;
        tables;
        extra;
      })

let find_extra t name = List.assoc_opt name t.extra

(* --- install ------------------------------------------------------------------------ *)

let build_table ts =
  match Schema.create ~name:ts.ts_name ~columns:ts.ts_columns with
  | Error e -> Error (Printf.sprintf "table %s: bad schema: %s" ts.ts_name e)
  | Ok schema -> (
      (* [Schema.create] re-derives the pk; [Table.restore] rebuilds the
         pk index before the extra specs are applied, so dedupe. *)
      match
        try
          Ok
            (Table.restore ~schema ~slots:ts.ts_slots ~indexes:ts.ts_indexes
               ~pruned_total:ts.ts_pruned)
        with Invalid_argument e -> Error e
      with
      | Error e -> Error e
      | Ok table -> (
          match Table.check_visibility table with
          | Ok () -> Ok table
          | Error e -> Error ("restored table incoherent: " ^ e)))

let install ~catalog ~store ~contracts ~manager ~identities t =
  (* Phase 1 — validate and build everything on the side; no live state
     is touched until nothing can fail. *)
  let scratch = Block_store.create () in
  match Block_store.restore scratch t.blocks with
  | Error e -> Error e
  | Ok () -> (
      match Block_store.audit scratch identities with
      | Error h -> Error (Printf.sprintf "snapshot block %d fails verification" h)
      | Ok () ->
          if Block_store.height scratch <> t.height then
            Error
              (Printf.sprintf "snapshot claims height %d but carries %d blocks"
                 t.height (Block_store.height scratch))
          else
            let rec build acc = function
              | [] -> Ok (List.rev acc)
              | ts :: rest -> (
                  match build_table ts with
                  | Error _ as e -> e
                  | Ok table -> build (table :: acc) rest)
            in
            Result.bind (build [] t.tables) (fun tables ->
                if
                  not
                    (List.exists
                       (fun tbl -> String.equal (Table.name tbl) Catalog.ledger_table)
                       tables)
                then Error "snapshot lacks the ledger table"
                else
                  let bad_contract =
                    let probe = Registry.create () in
                    List.find_map
                      (fun (name, version, source) ->
                        match Registry.install_exact probe ~name ~version ~source with
                        | Ok () -> None
                        | Error e -> Some (Printf.sprintf "contract %s: %s" name e))
                      t.contracts
                  in
                  match bad_contract with
                  | Some e -> Error e
                  | None -> begin
                  (* Phase 2 — swap, in an order where each step leaves a
                     consistent (catalog, store) pair. *)
                  Catalog.swap_tables catalog tables;
                  (match Block_store.restore store t.blocks with
                  | Ok () -> ()
                  | Error _ -> assert false (* validated on scratch above *));
                  List.iter
                    (fun (name, _, _) -> ignore (Registry.drop contracts ~name))
                    (Registry.export_procedural contracts);
                  List.iter
                    (fun (name, version, source) ->
                      match Registry.install_exact contracts ~name ~version ~source with
                      | Ok () -> ()
                      | Error _ -> assert false (* probed above *))
                    t.contracts;
                  Registry.set_next_version contracts t.contract_next_version;
                  Manager.restore_globals manager ~next_txid:t.next_txid t.globals;
                  Ok ()
                end))

(* --- accounting --------------------------------------------------------------------- *)

let resident_versions t =
  List.fold_left
    (fun acc ts ->
      Array.fold_left
        (fun acc slot -> match slot with Some _ -> acc + 1 | None -> acc)
        acc ts.ts_slots)
    0 t.tables
