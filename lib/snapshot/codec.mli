(** Canonical, deterministic serialization primitives for state snapshots
    (DESIGN.md §11).

    Every field is a netstring ([<len>:<bytes>]): self-delimiting, with
    exactly one spelling per value, so equal states encode to equal bytes
    on every node — the property chunk content-addressing and the
    manifest's Merkle root rely on. No [Marshal], ever (its output
    depends on sharing and word size). *)

type writer

val writer : unit -> writer

val contents : writer -> string

val str : writer -> string -> unit

val int : writer -> int -> unit

val bool : writer -> bool -> unit

val value : writer -> Brdb_storage.Value.t -> unit

(** [list w f xs] writes the length then each element. *)
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit

type reader

val reader : string -> reader

val at_end : reader -> bool

(** Readers raise an internal exception on malformed input; only
    {!decode} catches it, so use the [r_*] functions inside a decoder
    passed to {!decode}. *)

val r_str : reader -> string

val r_int : reader -> int

val r_bool : reader -> bool

val r_value : reader -> Brdb_storage.Value.t

val r_list : reader -> (reader -> 'a) -> 'a list

(** [decode src f] runs decoder [f] over [src], requiring full
    consumption; malformed input yields [Error] (never an exception). *)
val decode : string -> (reader -> 'a) -> ('a, string) result

(** [fail msg] aborts the decoder running under {!decode} (semantic
    validation failures: bad schema, broken chain, unknown tag). *)
val fail : string -> 'a

