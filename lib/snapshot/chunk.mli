(** Chunked, content-addressed transfer of an encoded snapshot
    (DESIGN.md §11).

    The encoded snapshot payload is split into fixed-size chunks; each
    chunk is addressed by its SHA-256, the manifest carries the full hash
    list plus their Merkle root, and the root is bound to the checkpoint's
    chained state digest ([m_binding]) so a manifest cannot mix chunks of
    one state with the digest of another. A fetched chunk verifies
    independently — corruption is detected chunk-by-chunk and only the
    bad chunk is re-fetched (from a rotated source). *)

type chunk = {
  c_index : int;
  c_hash : string;  (** hex SHA-256 of [c_payload] *)
  c_payload : string;
}

type manifest = {
  m_height : int;  (** checkpoint height the snapshot captures *)
  m_state_digest : string;  (** chained state digest at [m_height] *)
  m_chunk_size : int;
  m_total_bytes : int;  (** length of the encoded snapshot *)
  m_hashes : string array;  (** per-chunk content addresses *)
  m_root : string;  (** Merkle root over [m_hashes] *)
  m_binding : string;  (** digest binding root + state digest + height *)
}

(** Default chunk size (bytes). *)
val default_size : int

val hash_payload : string -> string

(** [split ~chunk_size payload] — at least one (possibly empty) chunk.
    Raises [Invalid_argument] when [chunk_size <= 0]. *)
val split : chunk_size:int -> string -> chunk array

val manifest :
  height:int ->
  state_digest:string ->
  chunk_size:int ->
  total_bytes:int ->
  string array ->
  manifest

val manifest_of_chunks :
  height:int ->
  state_digest:string ->
  chunk_size:int ->
  total_bytes:int ->
  chunk array ->
  manifest

val chunk_count : manifest -> int

(** Internal consistency: root matches the hash list, the binding matches
    the (root, state digest, height) triple, and the chunk count matches
    the advertised size. *)
val verify_manifest : manifest -> bool

(** [verify_chunk m c] — [c]'s payload hashes to the manifest's address
    for its index. *)
val verify_chunk : manifest -> chunk -> bool

(** [assemble m parts] concatenates verified chunk payloads back into the
    encoded snapshot; [Error] names the first missing chunk. *)
val assemble : manifest -> string option array -> (string, string) result
