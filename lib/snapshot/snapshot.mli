(** Deterministic state snapshots (DESIGN.md §11).

    A snapshot is a canonical serialization of everything a node computes
    from the block stream at a checkpoint height [h]: the catalog with
    every table's version chains ([xmin]/[xmax]/[creator_block]/
    [deleter_block] preserved, so PROVENANCE queries still work after a
    bootstrap), the ledger table, the block store, the contract registry
    (procedural contracts by source), the transaction-manager counters
    needed for replay equivalence (next txid, global-id map), and opaque
    node-layer sections (per-block digests, sys.* records, WAL tail).

    Determinism contract: capture iterates tables in sorted-name order and
    heaps in vid order, values use {!Brdb_storage.Value.encode}, and the
    codec is canonical — two nodes with equal state at [h] produce
    byte-identical snapshots, which is what makes chunk content addresses
    and the manifest Merkle root comparable across sources. *)

type compaction =
  | Archive  (** keep dead version chains below the snapshot height *)
  | Pruned  (** drop versions invisible at (and after) the height *)

val compaction_to_string : compaction -> string

type table_state = {
  ts_name : string;
  ts_columns : Brdb_storage.Schema.column list;
  ts_slots : Brdb_storage.Version.t option array;  (** vid = slot index *)
  ts_indexes : (int * bool) list;  (** (column, unique) *)
  ts_pruned : int;
}

type t = {
  height : int;
  state_digest : string;  (** chained state digest at [height] *)
  compaction : compaction;
  next_txid : int;
  globals : (string * int) list;  (** global id -> txid, sorted *)
  contract_next_version : int;
  contracts : (string * int * string) list;  (** (name, version, source) *)
  blocks : Brdb_ledger.Block.t list;  (** heights 1..[height] *)
  tables : table_state list;  (** sorted by name; includes pgledger *)
  extra : (string * string) list;  (** named node-layer sections, sorted *)
}

(** [capture] snapshots live state at the store's current height (which
    must equal [height]). In-flight (uncommitted) versions are dropped:
    only settled state travels; their transactions re-execute from blocks
    on the installing node. [Pruned] additionally drops versions dead at
    [height] outside pgledger, counting them into [ts_pruned]. The
    returned value shares no mutable state with the node. *)
val capture :
  catalog:Brdb_storage.Catalog.t ->
  store:Brdb_ledger.Block_store.t ->
  contracts:Brdb_contracts.Registry.t ->
  manager:Brdb_txn.Manager.t ->
  height:int ->
  state_digest:string ->
  compaction:compaction ->
  ?extra:(string * string) list ->
  unit ->
  t

(** Canonical byte encoding (the payload {!Chunk.split} chunks). *)
val encode : t -> string

val decode : string -> (t, string) result

val find_extra : t -> string -> string option

(** [install] replaces the storage-level state of a node with the
    snapshot's. Phase 1 validates everything off to the side — block
    chain + signatures (against [identities]), schemas, version-chain /
    visibility-index coherence, contract sources — and returns [Error]
    without touching live state. Phase 2 (infallible) swaps tables,
    restores the block store, and resets contracts and manager counters.
    Node-layer [extra] sections are the caller's to apply, under its WAL
    install guard. *)
val install :
  catalog:Brdb_storage.Catalog.t ->
  store:Brdb_ledger.Block_store.t ->
  contracts:Brdb_contracts.Registry.t ->
  manager:Brdb_txn.Manager.t ->
  identities:Brdb_crypto.Identity.Registry.t ->
  t ->
  (unit, string) result

(** Number of materialized row versions the snapshot carries (the
    resident-memory figure the bootstrap bench reports). *)
val resident_versions : t -> int
