exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let fail msg = raise (Corrupt msg)

type writer = Buffer.t

let writer () = Buffer.create 4096

let contents = Buffer.contents

(* Every token is a netstring "<len>:<bytes>": unambiguous, canonical
   (one spelling per string) and self-delimiting, so the decoder never
   guesses where a field ends. *)
let str w s =
  Buffer.add_string w (string_of_int (String.length s));
  Buffer.add_char w ':';
  Buffer.add_string w s

let int w i = str w (string_of_int i)

let bool w b = str w (if b then "1" else "0")

let value w v = str w (Brdb_storage.Value.encode v)

let list w f xs =
  int w (List.length xs);
  List.iter (f w) xs

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let at_end r = r.pos >= String.length r.src

let r_str r =
  let n = String.length r.src in
  let start = r.pos in
  let rec scan i =
    if i >= n then corrupt "truncated token length at byte %d" start
    else if r.src.[i] = ':' then i
    else if i - start > 10 then corrupt "unterminated token length at byte %d" start
    else scan (i + 1)
  in
  let colon = scan start in
  if colon = start then corrupt "empty token length at byte %d" start;
  match int_of_string_opt (String.sub r.src start (colon - start)) with
  | None -> corrupt "bad token length at byte %d" start
  | Some len ->
      if len < 0 || colon + 1 + len > n then
        corrupt "token at byte %d overruns input" start
      else begin
        r.pos <- colon + 1 + len;
        String.sub r.src (colon + 1) len
      end

let r_int r =
  let s = r_str r in
  match int_of_string_opt s with
  | Some i -> i
  | None -> corrupt "expected integer, got %S" s

let r_bool r =
  match r_str r with
  | "1" -> true
  | "0" -> false
  | s -> corrupt "expected bool, got %S" s

let r_value r =
  let s = r_str r in
  match Brdb_storage.Value.decode s with
  | Some v -> v
  | None -> corrupt "bad value encoding %S" s

let r_list r f =
  let n = r_int r in
  if n < 0 then corrupt "negative list length %d" n
  else List.init n (fun _ -> f r)

let decode src f =
  try
    let r = reader src in
    let x = f r in
    if at_end r then Ok x else Error "trailing bytes after snapshot payload"
  with Corrupt msg -> Error ("corrupt snapshot: " ^ msg)
