module Sha256 = Brdb_crypto.Sha256
module Merkle = Brdb_crypto.Merkle
module Hex = Brdb_util.Hex

let default_size = 4096

type chunk = { c_index : int; c_hash : string; c_payload : string }

type manifest = {
  m_height : int;
  m_state_digest : string;
  m_chunk_size : int;
  m_total_bytes : int;
  m_hashes : string array;
  m_root : string;
  m_binding : string;
}

let hash_payload payload = Sha256.hex payload

let split ~chunk_size payload =
  if chunk_size <= 0 then invalid_arg "Chunk.split: chunk_size must be positive";
  let total = String.length payload in
  let n = max 1 ((total + chunk_size - 1) / chunk_size) in
  Array.init n (fun i ->
      let off = i * chunk_size in
      let len = min chunk_size (total - off) in
      let c_payload = String.sub payload off (max 0 len) in
      { c_index = i; c_hash = hash_payload c_payload; c_payload })

let bind ~root ~state_digest ~height =
  Hex.encode (Sha256.digest_concat [ root; state_digest; string_of_int height ])

let manifest ~height ~state_digest ~chunk_size ~total_bytes hashes =
  let root = Hex.encode (Merkle.root (Array.to_list hashes)) in
  {
    m_height = height;
    m_state_digest = state_digest;
    m_chunk_size = chunk_size;
    m_total_bytes = total_bytes;
    m_hashes = hashes;
    m_root = root;
    m_binding = bind ~root ~state_digest ~height;
  }

let manifest_of_chunks ~height ~state_digest ~chunk_size ~total_bytes chunks =
  manifest ~height ~state_digest ~chunk_size ~total_bytes
    (Array.map (fun c -> c.c_hash) chunks)

let chunk_count m = Array.length m.m_hashes

let verify_manifest m =
  let root = Hex.encode (Merkle.root (Array.to_list m.m_hashes)) in
  String.equal root m.m_root
  && String.equal
       (bind ~root ~state_digest:m.m_state_digest ~height:m.m_height)
       m.m_binding
  && m.m_chunk_size > 0
  && m.m_total_bytes >= 0
  && chunk_count m = max 1 ((m.m_total_bytes + m.m_chunk_size - 1) / m.m_chunk_size)

let verify_chunk m c =
  c.c_index >= 0
  && c.c_index < chunk_count m
  && String.equal (hash_payload c.c_payload) m.m_hashes.(c.c_index)
  && String.equal c.c_hash m.m_hashes.(c.c_index)

let assemble m parts =
  if Array.length parts <> chunk_count m then Error "wrong chunk count"
  else
    let buf = Buffer.create m.m_total_bytes in
    let missing = ref None in
    Array.iteri
      (fun i part ->
        match part with
        | Some payload when !missing = None -> Buffer.add_string buf payload
        | Some _ -> ()
        | None -> if !missing = None then missing := Some i)
      parts;
    match !missing with
    | Some i -> Error (Printf.sprintf "chunk %d missing" i)
    | None ->
        let payload = Buffer.contents buf in
        if String.length payload <> m.m_total_bytes then
          Error "assembled size mismatch"
        else Ok payload
