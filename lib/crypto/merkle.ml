let leaf_hash x = Sha256.digest ("\x00" ^ x)

let node_hash l r = Sha256.digest_concat [ "\x01"; l; r ]

let empty_root = Sha256.digest "brdb-merkle-empty"

(* Odd levels promote the last node unchanged (Bitcoin-style duplication
   would allow two different leaf multisets with the same root). *)
let rec level = function
  | [] -> []
  | [ x ] -> [ x ]
  | a :: b :: rest -> node_hash a b :: level rest

let rec fold = function
  | [] -> empty_root
  | [ x ] -> x
  | xs -> fold (level xs)

let root leaves = fold (List.map leaf_hash leaves)

type step = Left of string | Right of string

type proof = step list

let prove leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then invalid_arg "Merkle.prove: index out of range";
  let rec build nodes i acc =
    match nodes with
    | [] | [ _ ] -> List.rev acc
    | _ ->
        let arr = Array.of_list nodes in
        let sibling =
          if i mod 2 = 0 then
            if i + 1 < Array.length arr then Some (Right arr.(i + 1)) else None
          else Some (Left arr.(i - 1))
        in
        let acc = match sibling with Some s -> s :: acc | None -> acc in
        (* A node with no sibling is promoted, keeping its index meaningful. *)
        build (level nodes) (i / 2) acc
  in
  build (List.map leaf_hash leaves) i []

(* Canonical text form: one 'L'/'R' tag plus the hex sibling digest per
   step, root-ward order preserved. Hex keeps proofs printable for the
   CLI and JSON receipts without a second framing layer. *)
let proof_to_string proof =
  String.concat ""
    (List.map
       (function
         | Left l -> "L" ^ Brdb_util.Hex.encode l
         | Right r -> "R" ^ Brdb_util.Hex.encode r)
       proof)

let proof_of_string s =
  let step_len = 1 + 64 in
  let n = String.length s in
  if n mod step_len <> 0 then None
  else
    let rec parse i acc =
      if i = n then Some (List.rev acc)
      else
        let tag = s.[i] in
        match Brdb_util.Hex.decode (String.sub s (i + 1) 64) with
        | None -> None
        | Some digest -> (
            match tag with
            | 'L' -> parse (i + step_len) (Left digest :: acc)
            | 'R' -> parse (i + step_len) (Right digest :: acc)
            | _ -> None)
    in
    parse 0 []

let apply ~leaf proof =
  List.fold_left
    (fun h step ->
      match step with Left l -> node_hash l h | Right r -> node_hash h r)
    (leaf_hash leaf) proof

let check ~root:expected ~leaf proof = String.equal (apply ~leaf proof) expected
