(** Binary Merkle trees over SHA-256.

    Used to digest the set of transactions in a block and the per-block
    write sets exchanged during checkpointing. Leaves are domain-separated
    from internal nodes so a leaf cannot be reinterpreted as a subtree. *)

(** [root leaves] is the Merkle root; the root of [[]] is a fixed
    sentinel digest. *)
val root : string list -> string

type proof

(** [prove leaves i] builds an inclusion proof for the [i]-th leaf.
    Raises [Invalid_argument] when [i] is out of range. *)
val prove : string list -> int -> proof

(** [apply ~leaf proof] is the root the proof implies for [leaf] — an
    untrusting verifier recomputes it and compares against a root bound
    into a trusted hash chain (ISSUE 10). *)
val apply : leaf:string -> proof -> string

(** [check ~root ~leaf proof] verifies an inclusion proof. *)
val check : root:string -> leaf:string -> proof -> bool

(** Canonical printable encoding of a proof: per step, a ['L']/['R'] tag
    naming the sibling's side followed by its hex digest, in leaf-to-root
    order. Used by read receipts and provenance proofs (ISSUE 10) so an
    untrusting client can carry proofs as plain strings. *)
val proof_to_string : proof -> string

(** Inverse of {!proof_to_string}; [None] on any malformed byte. *)
val proof_of_string : string -> proof option
