(* Perf-regression gate (ISSUE 7, tentpole d).

   Compares a fresh `bench --json --quick` run against a committed
   baseline with per-metric tolerances and exits non-zero on regression;
   check.sh runs it after the test suite. The simulation is deterministic
   (fixed seeds), so on an unchanged tree fresh == baseline exactly —
   tolerances exist to absorb intentional cost-model recalibrations and
   small scheduling shifts from legitimate changes, not run-to-run noise.

   Usage:
     bench_diff --baseline BENCH_profile.json --fresh fresh.json \
                --tolerances tools/bench_tolerances.txt

   Tolerance file: one rule per line, `<metric> <rel-tolerance> <dir>`
   with dir in {lower_is_worse, higher_is_worse, both}; '#' comments.
   Only listed metrics are gated. Records are matched by their identity
   fields (experiment/kind/flow/contract/block_size/rate); a baseline
   record with no fresh counterpart is itself a failure. *)

(* ------------------------------------------------- minimal JSON reader *)
(* No JSON library in the image; this accepts exactly the subset
   bench/main.ml emits (objects, arrays, strings, numbers, bools, null). *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if !pos + 4 > n then fail "bad \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* bench output is ASCII; encode BMP points as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------ records *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let records_of path =
  match parse_json (read_file path) with
  | Obj fields -> (
      match List.assoc_opt "records" fields with
      | Some (Arr rs) ->
          List.filter_map (function Obj o -> Some o | _ -> None) rs
      | _ -> failwith (path ^ ": no \"records\" array"))
  | _ -> failwith (path ^ ": top level is not an object")

(* Identity: which fields *name* a record (vs. measure it). *)
let identity_fields =
  [ "experiment"; "kind"; "flow"; "contract"; "block_size"; "rate" ]

let identity r =
  String.concat " "
    (List.filter_map
       (fun k ->
         match List.assoc_opt k r with
         | Some (Str s) -> Some (Printf.sprintf "%s=%s" k s)
         | Some (Num f) -> Some (Printf.sprintf "%s=%g" k f)
         | _ -> None)
       identity_fields)

let number r k =
  match List.assoc_opt k r with Some (Num f) -> Some f | _ -> None

(* ---------------------------------------------------------- tolerances *)

type direction = Lower_is_worse | Higher_is_worse | Both

type rule = { metric : string; rel_tol : float; dir : direction }

let parse_tolerances path =
  let ic = open_in path in
  let rules = ref [] in
  (try
     while true do
       let raw = input_line ic in
       let line =
         match String.index_opt raw '#' with
         | Some i -> String.sub raw 0 i
         | None -> raw
       in
       match
         String.split_on_char ' ' (String.trim line)
         |> List.filter (fun s -> s <> "")
       with
       | [] -> ()
       | [ metric; tol; dir ] ->
           let dir =
             match dir with
             | "lower_is_worse" -> Lower_is_worse
             | "higher_is_worse" -> Higher_is_worse
             | "both" -> Both
             | d -> failwith (path ^ ": unknown direction " ^ d)
           in
           rules := { metric; rel_tol = float_of_string tol; dir } :: !rules
       | _ -> failwith (path ^ ": malformed line: " ^ raw)
     done
   with End_of_file -> close_in ic);
  List.rev !rules

(* --------------------------------------------------------------- diff *)

let check ~baseline ~fresh ~rules =
  let failures = ref [] in
  let checked = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun b ->
      let id = identity b in
      match
        List.find_opt (fun f -> identity f = id) fresh
      with
      | None -> fail "missing record in fresh run: [%s]" id
      | Some f ->
          List.iter
            (fun r ->
              match (number b r.metric, number f r.metric) with
              | Some bv, Some fv ->
                  incr checked;
                  let denom = Float.max (Float.abs bv) 1e-9 in
                  let delta = (fv -. bv) /. denom in
                  let worse =
                    match r.dir with
                    | Lower_is_worse -> -.delta > r.rel_tol
                    | Higher_is_worse -> delta > r.rel_tol
                    | Both -> Float.abs delta > r.rel_tol
                  in
                  if worse then
                    fail "%s regressed: %g -> %g (%+.1f%%, tolerance %.0f%%) [%s]"
                      r.metric bv fv (delta *. 100.) (r.rel_tol *. 100.) id
              | Some _, None ->
                  incr checked;
                  fail "metric %s disappeared from fresh run [%s]" r.metric id
              | None, _ -> ())
            rules)
    baseline;
  (!checked, List.rev !failures)

let () =
  let baseline = ref "" and fresh = ref "" and tolerances = ref "" in
  let args =
    [
      ("--baseline", Arg.Set_string baseline, "committed baseline JSON");
      ("--fresh", Arg.Set_string fresh, "fresh bench --json output");
      ("--tolerances", Arg.Set_string tolerances, "tolerance rules file");
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench_diff --baseline B.json --fresh F.json --tolerances T.txt";
  if !baseline = "" || !fresh = "" || !tolerances = "" then begin
    prerr_endline "bench_diff: --baseline, --fresh and --tolerances are required";
    exit 2
  end;
  let rules = parse_tolerances !tolerances in
  let b = records_of !baseline and f = records_of !fresh in
  let checked, failures = check ~baseline:b ~fresh:f ~rules in
  if failures = [] then
    Printf.printf "bench_diff: OK — %d metric comparisons within tolerance (%d baseline records)\n"
      checked (List.length b)
  else begin
    Printf.eprintf "bench_diff: %d regression(s):\n" (List.length failures);
    List.iter (fun m -> Printf.eprintf "  %s\n" m) failures;
    exit 1
  end
