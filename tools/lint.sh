#!/bin/sh
# Determinism lint: library code must never read the wall clock or the
# global Random state — simulations use Brdb_sim.Clock and Brdb_sim.Rng
# (seeded), so a run is a pure function of its inputs (CLAUDE.md).
# Run via `dune build @lint` (the alias passes lib/ in) or directly:
#   sh tools/lint.sh lib
set -eu

dir="${1:-lib}"

# [^.[:alnum:]_]Random\. rejects the global Random module while allowing
# qualified deterministic uses like Brdb_sim.Rng and Foo.Random_local.
pattern='Unix\.gettimeofday|Unix\.time[^a-z]|Sys\.time|[^.[:alnum:]_]Random\.'

matches=$(grep -rnE "$pattern" "$dir" --include='*.ml' --include='*.mli' || true)

if [ -n "$matches" ]; then
  echo "determinism lint failed — wall-clock or global Random in library code:" >&2
  echo "$matches" >&2
  exit 1
fi

# Executor/storage code must never iterate a hashtable in insertion-history
# order: anything that reaches committed state, read sets or hashes has to
# drain in key order (Brdb_util.Sorted_tbl) or via an explicit index
# (Table.iter_live). Hashtbl.filter_map_inplace is allowed — it rewrites
# in place and exposes no ordering.
hashtbl_pattern='Hashtbl\.(iter|fold)[^a-z_]'
hashtbl_matches=''
for sub in engine storage; do
  d="$dir/$sub"
  [ -d "$d" ] || continue
  m=$(grep -rnE "$hashtbl_pattern" "$d" --include='*.ml' --include='*.mli' || true)
  [ -n "$m" ] && hashtbl_matches="$hashtbl_matches$m
"
done

if [ -n "$hashtbl_matches" ]; then
  echo "determinism lint failed — unordered Hashtbl iteration in executor/storage code" >&2
  echo "(use Brdb_util.Sorted_tbl or an ordered index instead):" >&2
  printf '%s' "$hashtbl_matches" >&2
  exit 1
fi
echo "lint ok: no wall-clock, global Random, or unordered Hashtbl iteration under $dir/"
