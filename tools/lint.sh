#!/bin/sh
# Determinism lint: library code must never read the wall clock or the
# global Random state — simulations use Brdb_sim.Clock and Brdb_sim.Rng
# (seeded), so a run is a pure function of its inputs (CLAUDE.md).
# Run via `dune build @lint` (the alias passes lib/ in) or directly:
#   sh tools/lint.sh lib
set -eu

dir="${1:-lib}"

# [^.[:alnum:]_]Random\. rejects the global Random module while allowing
# qualified deterministic uses like Brdb_sim.Rng and Foo.Random_local.
pattern='Unix\.gettimeofday|Unix\.time[^a-z]|Sys\.time|[^.[:alnum:]_]Random\.'

matches=$(grep -rnE "$pattern" "$dir" --include='*.ml' --include='*.mli' || true)

if [ -n "$matches" ]; then
  echo "determinism lint failed — wall-clock or global Random in library code:" >&2
  echo "$matches" >&2
  exit 1
fi
echo "lint ok: no wall-clock or global Random under $dir/"
