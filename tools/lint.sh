#!/bin/sh
# Determinism lint: library code must never read the wall clock or the
# global Random state — simulations use Brdb_sim.Clock and Brdb_sim.Rng
# (seeded), so a run is a pure function of its inputs (CLAUDE.md).
# Run via `dune build @lint` (the alias passes lib/ in) or directly:
#   sh tools/lint.sh lib
set -eu

dir="${1:-lib}"

# [^.[:alnum:]_]Random\. rejects the global Random module while allowing
# qualified deterministic uses like Brdb_sim.Rng and Foo.Random_local.
pattern='Unix\.gettimeofday|Unix\.time[^a-z]|Sys\.time|[^.[:alnum:]_]Random\.'

matches=$(grep -rnE "$pattern" "$dir" --include='*.ml' --include='*.mli' || true)

if [ -n "$matches" ]; then
  echo "determinism lint failed — wall-clock or global Random in library code:" >&2
  echo "$matches" >&2
  exit 1
fi

# Executor/storage code must never iterate a hashtable in insertion-history
# order: anything that reaches committed state, read sets or hashes has to
# drain in key order (Brdb_util.Sorted_tbl) or via an explicit index
# (Table.iter_live). Hashtbl.filter_map_inplace is allowed — it rewrites
# in place and exposes no ordering.
hashtbl_pattern='Hashtbl\.(iter|fold)[^a-z_]'
hashtbl_matches=''
for sub in engine storage; do
  d="$dir/$sub"
  [ -d "$d" ] || continue
  m=$(grep -rnE "$hashtbl_pattern" "$d" --include='*.ml' --include='*.mli' || true)
  [ -n "$m" ] && hashtbl_matches="$hashtbl_matches$m
"
done

if [ -n "$hashtbl_matches" ]; then
  echo "determinism lint failed — unordered Hashtbl iteration in executor/storage code" >&2
  echo "(use Brdb_util.Sorted_tbl or an ordered index instead):" >&2
  printf '%s' "$hashtbl_matches" >&2
  exit 1
fi

# Snapshot serialization (DESIGN.md §11) must be canonical: no Marshal
# (representation-dependent bytes would fork chunk content addresses
# across nodes) and no unordered Hashtbl iteration (capture drains tables
# in sorted order; hash order would leak into the encoding). The Hashtbl
# check reuses the executor/storage rule above.
if [ -d "$dir/snapshot" ]; then
  snap_matches=$(grep -rnE "Marshal\.|$hashtbl_pattern" "$dir/snapshot" \
    --include='*.ml' --include='*.mli' || true)
  if [ -n "$snap_matches" ]; then
    echo "determinism lint failed — Marshal or unordered Hashtbl iteration in" >&2
    echo "snapshot code (the codec must be canonical; DESIGN.md §11):" >&2
    echo "$snap_matches" >&2
    exit 1
  fi
fi

# The sys.* introspection schema (DESIGN.md §10) has exactly one source of
# truth: the virtual-table providers (Catalog.register_virtual callers in
# lib/node and lib/core, schemas in lib/obs, the name guard in lib/storage).
# Nothing else may construct a sys-prefixed table name — the executor must
# route every decision through Catalog.is_sys_name so the read-only and
# contract-visibility rules cannot be bypassed by string comparison drift.
# ("sys.* tables are read-only" error messages don't match: '*' != [a-z_].)
sys_matches=$(grep -rnE '"sys\.[a-z_]' "$dir" --include='*.ml' --include='*.mli' \
  | grep -vE "^$dir/(node|core|obs|storage)/" || true)

if [ -n "$sys_matches" ]; then
  echo "lint failed — sys-prefixed table name constructed outside the" >&2
  echo "virtual-table provider layers (lib/node, lib/core, lib/obs, lib/storage);" >&2
  echo "use Catalog.is_sys_name / Catalog.virtual_names instead:" >&2
  echo "$sys_matches" >&2
  exit 1
fi
# Parallelism primitives are banned outside the one designated scheduler
# module (ISSUE 8): the wave validator *models* multi-core execution on
# the simulated clock (lib/sim/cpu.ml); real Domain/Mutex/Atomic anywhere
# in the libraries would introduce actual nondeterminism. The exclusion
# still lints cpu.ml for the wall-clock/Random rules above — only this
# rule is scoped.
par_pattern='(^|[^.[:alnum:]_])(Domain|Mutex|Atomic)\.'
par_matches=$(grep -rnE "$par_pattern" "$dir" --include='*.ml' --include='*.mli' \
  | grep -v "^$dir/sim/cpu\.ml:" || true)

if [ -n "$par_matches" ]; then
  echo "determinism lint failed — Domain/Mutex/Atomic outside the designated" >&2
  echo "scheduler module ($dir/sim/cpu.ml); parallelism is modeled, not real (ISSUE 8):" >&2
  echo "$par_matches" >&2
  exit 1
fi

# Every network message must carry a span context (ISSUE 7): each
# constructor of Msg.t has to be matched in Msg.span_ctx, so a new message
# variant cannot silently opt out of causal tracing. Containment check:
# constructors are extracted from the `type t =` block of msg.ml and each
# must appear inside the span_ctx function body (the region between
# `let span_ctx` and the following `module Net`).
msg_file="$dir/consensus/msg.ml"
if [ -f "$msg_file" ]; then
  constructors=$(awk '/^type t =/{in_t=1; next} in_t && /^[a-z]/{in_t=0} in_t' \
    "$msg_file" | grep -oE '^  \| [A-Z][A-Za-z_]*' | sed 's/^  | //' || true)
  span_region=$(awk '/^let span_ctx/{flag=1} /^module Net/{flag=0} flag' "$msg_file")
  missing=''
  for c in $constructors; do
    if ! printf '%s' "$span_region" | grep -qE "(\| *|, *)$c([^A-Za-z_]|\$)"; then
      missing="$missing $c"
    fi
  done
  if [ -n "$missing" ]; then
    echo "lint failed — Msg.t constructor(s) without a span context in" >&2
    echo "Msg.span_ctx (every network message must be traceable; ISSUE 7):" >&2
    echo "  $missing" >&2
    exit 1
  fi
fi

# Every injectable fault class must be covered by the health plane
# (ISSUE 9): each constructor of Chaos.fault has to be matched in
# Chaos.expected_alerts, so a new fault class cannot ship undetectable.
# Same containment shape as the Msg.span_ctx rule above: constructors are
# extracted from the `type fault =` block of chaos.ml and each must appear
# inside the expected_alerts body (the region between `let expected_alerts`
# and the following `let faults_of_spec`).
chaos_file="$dir/core/chaos.ml"
if [ -f "$chaos_file" ]; then
  fault_constructors=$(awk '/^type fault =/{in_t=1; next} in_t && /^[a-z]/{in_t=0} in_t' \
    "$chaos_file" | grep -oE '^  \| [A-Z][A-Za-z_]*' | sed 's/^  | //' || true)
  coverage_region=$(awk '/^let expected_alerts/{flag=1} /^let faults_of_spec/{flag=0} flag' \
    "$chaos_file")
  missing=''
  for c in $fault_constructors; do
    if ! printf '%s' "$coverage_region" | grep -qE "(\| *)$c([^A-Za-z_]|\$)"; then
      missing="$missing $c"
    fi
  done
  if [ -n "$missing" ]; then
    echo "lint failed — Chaos.fault constructor(s) without an entry in" >&2
    echo "Chaos.expected_alerts (every fault class must map to the health-plane" >&2
    echo "detectors expected to notice it; ISSUE 9):" >&2
    echo "  $missing" >&2
    exit 1
  fi
fi

echo "lint ok: no wall-clock, global Random, unordered Hashtbl iteration, Marshal in snapshot code, stray sys.* literals, or Domain/Mutex/Atomic outside sim/cpu.ml under $dir/; every Msg.t constructor carries a span context; every Chaos.fault class has a coverage-map entry"
