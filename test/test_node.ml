open Brdb_node
module Block = Brdb_ledger.Block
module Identity = Brdb_crypto.Identity
module Value = Brdb_storage.Value
module Txn = Brdb_txn.Txn
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api

(* ---------------------------------------------------------------- harness *)

type harness = {
  registry : Identity.Registry.t;
  orderer : Identity.t;
  nodes : Node_core.t list;
  mutable prev : Block.t option;
  mutable tx_seq : int;
}

let orgs = [ "org1"; "org2"; "org3" ]

let user_names =
  [ "org1/admin"; "org2/admin"; "org3/admin"; "org1/alice"; "org2/bob" ]

let users = List.map (fun n -> (n, Identity.create n)) user_names

let identity_of name = List.assoc name users

(* [parallel i] decides whether node [i] validates with the ISSUE 8 wave
   scheduler; mixing modes across nodes of one harness is the strongest
   equivalence check — both process identical blocks. *)
let setup ?(flow = Node_core.Order_execute) ?(atomic_commit = false)
    ?(n_nodes = 2) ?(parallel = fun _ -> false) () =
  let registry = Identity.Registry.create () in
  let orderer = Identity.create "orderer/1" in
  (match Identity.Registry.register registry orderer with Ok () -> () | Error _ -> assert false);
  List.iter
    (fun (_, id) ->
      match Identity.Registry.register registry id with
      | Ok () -> ()
      | Error _ -> assert false)
    users;
  let nodes =
    List.init n_nodes (fun i ->
        let config =
          Node_core.make_config
            ~name:(Printf.sprintf "db-%d" (i + 1))
            ~org:(List.nth orgs (i mod 3))
            ~flow ~atomic_commit ~parallel_validation:(parallel i) ~orgs ()
        in
        let node = Node_core.create config ~registry in
        Node_core.bootstrap node;
        node)
  in
  { registry; orderer; nodes; prev = None; tx_seq = 0 }

let node h i = List.nth h.nodes i

(* Build, sign and deliver the next block to all nodes; returns one result
   per node. *)
let deliver h txs =
  let height = (match h.prev with None -> 0 | Some b -> b.Block.height) + 1 in
  let prev_hash =
    match h.prev with None -> Block.genesis_hash | Some b -> b.Block.hash
  in
  let block = Block.create ~height ~txs ~metadata:"test" ~prev_hash in
  let block = Block.sign block h.orderer in
  h.prev <- Some block;
  List.map
    (fun n ->
      match Node_core.process_block n block with
      | Ok r -> r
      | Error e -> Alcotest.failf "process_block failed on %s: %s" (Node_core.config n).Node_core.name e)
    h.nodes

let tx h ~user ~contract args =
  h.tx_seq <- h.tx_seq + 1;
  Block.make_tx
    ~id:(Printf.sprintf "tx-%d" h.tx_seq)
    ~identity:(identity_of user) ~contract ~args

let eo_tx ~user ~contract ~snapshot args =
  Block.make_eo_tx ~identity:(identity_of user) ~contract ~args ~snapshot

let install_everywhere h ~name body =
  List.iter (fun n -> Node_core.install_contract n ~name body) h.nodes

(* Standard test contracts. *)
let setup_contract =
  Registry.Native
    (fun ctx ->
      ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)");
      ignore (Api.execute ctx "CREATE TABLE accounts (id INT PRIMARY KEY, bal INT)");
      ignore (Api.execute ctx "INSERT INTO accounts VALUES (1, 60), (2, 60)"))

let put_contract =
  Registry.Native
    (fun ctx ->
      ignore (Api.execute ctx "INSERT INTO kv VALUES ($1, $2)"))

let bump_contract =
  Registry.Native
    (fun ctx ->
      let n = Api.execute ctx "UPDATE kv SET v = v + 1 WHERE k = $1" in
      if n = 0 then Api.fail "no such key")

let withdraw_src =
  (* The classic write-skew contract: allowed if the combined balance
     stays non-negative after withdrawing 70 from the caller's account. *)
  "LET a = SELECT bal FROM accounts WHERE id = $1;\n\
   LET b = SELECT bal FROM accounts WHERE id = $2;\n\
   REQUIRE :a + :b - 70 >= 0;\n\
   UPDATE accounts SET bal = bal - 70 WHERE id = $1"

let withdraw_contract =
  match Brdb_contracts.Procedural.parse withdraw_src with
  | Ok p -> Registry.Procedural p
  | Error e -> failwith e

let install_standard h =
  install_everywhere h ~name:"setup" setup_contract;
  install_everywhere h ~name:"put" put_contract;
  install_everywhere h ~name:"bump" bump_contract;
  install_everywhere h ~name:"withdraw" withdraw_contract

let init_chain h =
  install_standard h;
  let results = deliver h [ tx h ~user:"org1/admin" ~contract:"setup" [] ] in
  List.iter
    (fun (r : Node_core.block_result) ->
      match r.Node_core.br_statuses with
      | [ (_, Node_core.S_committed) ] -> ()
      | [ (_, s) ] -> Alcotest.failf "setup failed: %s" (Node_core.tx_status_to_string s)
      | _ -> Alcotest.fail "setup: wrong status count")
    results

let statuses (r : Node_core.block_result) = List.map snd r.Node_core.br_statuses

let committed = Node_core.S_committed

(* Nodes must agree on the *decision* for every transaction and on the
   resulting state. The abort reason may differ per node: a conflict a
   node saw as an in-flight rw-dependency is a stale/phantom read on a
   node that executed the transaction later — the paper's §3.4.3
   argument. The write-set hash is the authoritative equality check. *)
let outcome_kind = function
  | Node_core.S_committed -> "committed"
  | Node_core.S_aborted _ -> "aborted"
  | Node_core.S_rejected _ -> "rejected"

let check_identical h (results : Node_core.block_result list) =
  ignore h;
  match results with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun (r : Node_core.block_result) ->
          Alcotest.(check (list string))
            "decisions identical across nodes"
            (List.map outcome_kind (statuses first))
            (List.map outcome_kind (statuses r));
          Alcotest.(check string) "write-set hashes identical"
            (Brdb_util.Hex.encode first.Node_core.br_write_set_hash)
            (Brdb_util.Hex.encode r.Node_core.br_write_set_hash))
        rest

let query_int n sql =
  match Node_core.query n sql with
  | Ok rs -> (
      match rs.Brdb_engine.Exec.rows with
      | [ [| Value.Int i |] ] -> i
      | rows -> Alcotest.failf "expected one int, got %d rows" (List.length rows))
  | Error e -> Alcotest.fail e

let is_committed = function Node_core.S_committed -> true | _ -> false

let is_aborted = function Node_core.S_aborted _ -> true | _ -> false

(* -------------------------------------------------------------- OE tests *)

let test_oe_basic_commit () =
  let h = setup () in
  init_chain h;
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 10 ];
        tx h ~user:"org2/bob" ~contract:"put" [ Value.Int 2; Value.Int 20 ];
      ]
  in
  check_identical h results;
  Alcotest.(check bool) "all committed" true
    (List.for_all is_committed (statuses (List.hd results)));
  List.iter
    (fun n ->
      Alcotest.(check int) "kv rows" 2 (query_int n "SELECT COUNT(*) FROM kv");
      Alcotest.(check int) "height" 2 (Node_core.height n))
    h.nodes

let test_empty_block () =
  (* A block with no transactions (e.g. all duplicates filtered upstream)
     still advances the chain on every node. *)
  let h = setup () in
  init_chain h;
  let results = deliver h [] in
  check_identical h results;
  List.iter (fun n -> Alcotest.(check int) "height" 2 (Node_core.height n)) h.nodes;
  (* and the chain continues normally afterwards *)
  let r = deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 1 ] ] in
  Alcotest.(check bool) "next block commits" true
    (is_committed (List.hd (statuses (List.hd r))))

let test_oe_ledger_records () =
  let h = setup () in
  init_chain h;
  ignore (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 1 ] ]);
  let n = node h 0 in
  Alcotest.(check int) "ledger rows for block 2" 1
    (query_int n "SELECT COUNT(*) FROM pgledger WHERE blocknumber = 2 AND status = 'committed'");
  (* the invocation text is recorded *)
  match Node_core.query n "SELECT txquery FROM pgledger WHERE blocknumber = 2" with
  | Ok rs -> (
      match rs.Brdb_engine.Exec.rows with
      | [ [| Value.Text q |] ] ->
          Alcotest.(check string) "query text" "put(1, 1)" q
      | _ -> Alcotest.fail "expected one row")
  | Error e -> Alcotest.fail e

let test_oe_bad_signature_rejected () =
  let h = setup () in
  init_chain h;
  let good = tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 1 ] in
  (* Tamper with the arguments after signing. *)
  let bad = { good with Block.tx_args = [ Value.Int 1; Value.Int 999 ] } in
  let results = deliver h [ bad ] in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ Node_core.S_rejected _ ] -> ()
  | _ -> Alcotest.fail "expected rejection");
  Alcotest.(check int) "nothing written" 0 (query_int (node h 0) "SELECT COUNT(*) FROM kv")

let test_oe_unknown_user_rejected () =
  let h = setup () in
  init_chain h;
  let mallory = Identity.create "org9/mallory" in
  let bad =
    Block.make_tx ~id:"evil-1" ~identity:mallory ~contract:"put"
      ~args:[ Value.Int 1; Value.Int 1 ]
  in
  let results = deliver h [ bad ] in
  match statuses (List.hd results) with
  | [ Node_core.S_rejected _ ] -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_oe_duplicate_txid () =
  let h = setup () in
  init_chain h;
  let t1 = tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 1 ] in
  (* Same transaction submitted twice (resubmission scenario, §3.5). *)
  let results = deliver h [ t1; t1 ] in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ Node_core.S_committed; Node_core.S_rejected _ ] -> ()
  | _ -> Alcotest.fail "expected commit then rejection");
  (* and across blocks *)
  let results2 = deliver h [ t1 ] in
  (match statuses (List.hd results2) with
  | [ Node_core.S_rejected _ ] -> ()
  | _ -> Alcotest.fail "expected rejection in later block");
  Alcotest.(check int) "one row" 1 (query_int (node h 0) "SELECT COUNT(*) FROM kv")

let test_oe_contract_failure_aborts () =
  let h = setup () in
  init_chain h;
  let results = deliver h [ tx h ~user:"org1/alice" ~contract:"bump" [ Value.Int 404 ] ] in
  check_identical h results;
  match statuses (List.hd results) with
  | [ Node_core.S_aborted (Txn.Contract_error _) ] -> ()
  | [ s ] -> Alcotest.failf "wrong status: %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count"

let test_oe_unknown_contract_aborts () =
  let h = setup () in
  init_chain h;
  let results = deliver h [ tx h ~user:"org1/alice" ~contract:"nope" [] ] in
  match statuses (List.hd results) with
  | [ Node_core.S_aborted (Txn.Contract_error _) ] -> ()
  | _ -> Alcotest.fail "expected contract error"

let test_oe_write_skew_detected () =
  (* Two withdrawals in the same block, each reading both accounts and
     debiting a different one. Under plain SI both would commit, violating
     the invariant; SSI must abort exactly one, identically on all nodes. *)
  let h = setup () in
  init_chain h;
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"withdraw" [ Value.Int 1; Value.Int 2 ];
        tx h ~user:"org2/bob" ~contract:"withdraw" [ Value.Int 2; Value.Int 1 ];
      ]
  in
  check_identical h results;
  let sts = statuses (List.hd results) in
  Alcotest.(check int) "one committed" 1 (List.length (List.filter is_committed sts));
  Alcotest.(check int) "one aborted" 1 (List.length (List.filter is_aborted sts));
  (* invariant holds *)
  let total = query_int (node h 0) "SELECT SUM(bal) FROM accounts" in
  Alcotest.(check int) "invariant" 50 total

let test_oe_write_skew_sequential_blocks_ok () =
  (* The same two withdrawals in different blocks: the second one sees the
     first's debit and fails its REQUIRE — no SSI abort needed. *)
  let h = setup () in
  init_chain h;
  let r1 = deliver h [ tx h ~user:"org1/alice" ~contract:"withdraw" [ Value.Int 1; Value.Int 2 ] ] in
  Alcotest.(check bool) "first commits" true (is_committed (List.hd (statuses (List.hd r1))));
  let r2 = deliver h [ tx h ~user:"org2/bob" ~contract:"withdraw" [ Value.Int 2; Value.Int 1 ] ] in
  (match statuses (List.hd r2) with
  | [ Node_core.S_aborted (Txn.Contract_error _) ] -> ()
  | [ s ] -> Alcotest.failf "expected REQUIRE failure, got %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count");
  Alcotest.(check int) "invariant" 50 (query_int (node h 0) "SELECT SUM(bal) FROM accounts")

let test_oe_ww_first_in_block_wins () =
  let h = setup () in
  init_chain h;
  ignore (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 7; Value.Int 0 ] ]);
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"bump" [ Value.Int 7 ];
        tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 7 ];
      ]
  in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ Node_core.S_committed;
      Node_core.S_aborted (Txn.Ww_conflict _ | Txn.Ssi_conflict _) ] -> ()
  | sts ->
      Alcotest.failf "unexpected: %s"
        (String.concat "," (List.map Node_core.tx_status_to_string sts)));
  Alcotest.(check int) "bumped once" 1
    (query_int (node h 0) "SELECT v FROM kv WHERE k = 7")

let test_oe_duplicate_pk_in_block () =
  let h = setup () in
  init_chain h;
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 5; Value.Int 1 ];
        tx h ~user:"org2/bob" ~contract:"put" [ Value.Int 5; Value.Int 2 ];
      ]
  in
  check_identical h results;
  match statuses (List.hd results) with
  | [ Node_core.S_committed; Node_core.S_aborted (Txn.Duplicate_key _) ] -> ()
  | sts ->
      Alcotest.failf "unexpected: %s"
        (String.concat "," (List.map Node_core.tx_status_to_string sts))

(* -------------------------------------------------------------- EO tests *)

let test_eo_pre_execute_and_commit () =
  let h = setup ~flow:Node_core.Execute_order () in
  init_chain h;
  let t1 = eo_tx ~user:"org1/alice" ~contract:"put" ~snapshot:1 [ Value.Int 1; Value.Int 10 ] in
  (* node 0 pre-executes (the node a client submitted to); node 1 never
     hears about it until the block arrives -> missing there. *)
  (match Node_core.pre_execute (node h 0) t1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let results = deliver h [ t1 ] in
  check_identical h results;
  Alcotest.(check int) "no missing on node0" 0 (List.hd results).Node_core.br_missing;
  Alcotest.(check int) "missing on node1" 1 (List.nth results 1).Node_core.br_missing;
  Alcotest.(check bool) "committed" true (is_committed (List.hd (statuses (List.hd results))))

let test_eo_stale_read_aborts () =
  let h = setup ~flow:Node_core.Execute_order () in
  init_chain h;
  (* T reads account 1 at snapshot 1 (bal 60) and withdraws; before T's
     block arrives, another block empties account 2. T's REQUIRE passed at
     execution, but its read of account 2 is now stale. *)
  let t = eo_tx ~user:"org1/alice" ~contract:"withdraw" ~snapshot:1 [ Value.Int 1; Value.Int 2 ] in
  (match Node_core.pre_execute (node h 0) t with Ok () -> () | Error e -> Alcotest.fail e);
  let spoiler = eo_tx ~user:"org2/bob" ~contract:"withdraw" ~snapshot:1 [ Value.Int 2; Value.Int 1 ] in
  let r_spoil = deliver h [ spoiler ] in
  Alcotest.(check bool) "spoiler commits" true
    (is_committed (List.hd (statuses (List.hd r_spoil))));
  let results = deliver h [ t ] in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ Node_core.S_aborted (Txn.Stale_read | Txn.Phantom_read | Txn.Ssi_conflict _) ] -> ()
  | [ s ] -> Alcotest.failf "expected stale abort, got %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count");
  Alcotest.(check int) "invariant" 50 (query_int (node h 0) "SELECT SUM(bal) FROM accounts")

let test_eo_phantom_aborts () =
  let h = setup ~flow:Node_core.Execute_order () in
  init_chain h;
  install_everywhere h ~name:"count_range"
    (Registry.Native
       (fun ctx ->
         (match Api.query1 ctx "SELECT COUNT(*) FROM kv WHERE k BETWEEN 1 AND 100" with
         | Some (Value.Int c) -> Api.set_local ctx "c" (Value.Int c)
         | _ -> Api.fail "bad count");
         ignore (Api.execute ctx "INSERT INTO kv VALUES ($1, :c)")));
  (* T counts kv rows in [1,100] at snapshot 1 (zero rows); a subsequent
     block inserts k=50, a phantom for T's predicate. *)
  let t = eo_tx ~user:"org1/alice" ~contract:"count_range" ~snapshot:1 [ Value.Int 200 ] in
  (match Node_core.pre_execute (node h 0) t with Ok () -> () | Error e -> Alcotest.fail e);
  ignore (deliver h [ eo_tx ~user:"org2/bob" ~contract:"put" ~snapshot:1 [ Value.Int 50; Value.Int 0 ] ]);
  let results = deliver h [ t ] in
  check_identical h results;
  match statuses (List.hd results) with
  | [ Node_core.S_aborted (Txn.Phantom_read | Txn.Ssi_conflict _) ] -> ()
  | [ s ] -> Alcotest.failf "expected phantom abort, got %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count"

let test_eo_concurrent_cross_block () =
  (* Write skew where the two transactions land in *different* blocks and
     both pre-execute at the same snapshot: Table 2's cross-block rows. *)
  let h = setup ~flow:Node_core.Execute_order () in
  init_chain h;
  let t1 = eo_tx ~user:"org1/alice" ~contract:"withdraw" ~snapshot:1 [ Value.Int 1; Value.Int 2 ] in
  let t2 = eo_tx ~user:"org2/bob" ~contract:"withdraw" ~snapshot:1 [ Value.Int 2; Value.Int 1 ] in
  List.iter
    (fun t ->
      match Node_core.pre_execute (node h 0) t with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ t1; t2 ];
  let r1 = deliver h [ t1 ] in
  let r2 = deliver h [ t2 ] in
  check_identical h r1;
  check_identical h r2;
  let s1 = List.hd (statuses (List.hd r1)) and s2 = List.hd (statuses (List.hd r2)) in
  Alcotest.(check bool) "exactly one commits" true
    ((is_committed s1 && is_aborted s2) || (is_aborted s1 && is_committed s2));
  Alcotest.(check int) "invariant" 50 (query_int (node h 0) "SELECT SUM(bal) FROM accounts")

let test_eo_requires_index () =
  let h = setup ~flow:Node_core.Execute_order ~n_nodes:1 () in
  init_chain h;
  install_everywhere h ~name:"scan_all"
    (Registry.Native
       (fun ctx -> ignore (Api.query ctx "SELECT COUNT(*) FROM kv WHERE v = 1")));
  let t = eo_tx ~user:"org1/alice" ~contract:"scan_all" ~snapshot:1 [] in
  let results = deliver h [ t ] in
  match statuses (List.hd results) with
  | [ Node_core.S_aborted (Txn.Missing_index _) ] -> ()
  | [ s ] -> Alcotest.failf "expected missing-index abort, got %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count"

let test_eo_blind_update_rejected () =
  let h = setup ~flow:Node_core.Execute_order ~n_nodes:1 () in
  init_chain h;
  install_everywhere h ~name:"blind"
    (Registry.Native (fun ctx -> ignore (Api.execute ctx "UPDATE accounts SET bal = 0")));
  let results = deliver h [ eo_tx ~user:"org1/alice" ~contract:"blind" ~snapshot:1 [] ] in
  match statuses (List.hd results) with
  | [ Node_core.S_aborted (Txn.Blind_update _) ] -> ()
  | [ s ] -> Alcotest.failf "expected blind-update abort, got %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count"

(* --------------------------------------------------------- serial baseline *)

let test_serial_baseline_sees_predecessors () =
  let h = setup ~flow:Node_core.Serial_baseline ~n_nodes:1 () in
  init_chain h;
  (* put(9, 0) then bump(9) in the same block: serial execution sees the
     insert; OE-style same-snapshot execution would abort the bump. *)
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 9; Value.Int 0 ];
        tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 9 ];
      ]
  in
  Alcotest.(check bool) "both committed" true
    (List.for_all is_committed (statuses (List.hd results)));
  Alcotest.(check int) "v = 1" 1 (query_int (node h 0) "SELECT v FROM kv WHERE k = 9")

let test_oe_same_block_insert_then_bump_aborts () =
  (* Contrast with the serial baseline: in OE both execute on the previous
     block's snapshot, so the bump sees no row and fails. *)
  let h = setup ~flow:Node_core.Order_execute ~n_nodes:1 () in
  init_chain h;
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 9; Value.Int 0 ];
        tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 9 ];
      ]
  in
  match statuses (List.hd results) with
  | [ Node_core.S_committed; Node_core.S_aborted _ ] -> ()
  | sts ->
      Alcotest.failf "unexpected: %s"
        (String.concat "," (List.map Node_core.tx_status_to_string sts))

(* ------------------------------------------------------------- governance *)

let deploy_body =
  "INSERT INTO kv VALUES ($1, $2 * 2)"

let test_deployment_workflow () =
  let h = setup () in
  init_chain h;
  (* propose *)
  let propose =
    tx h ~user:"org1/admin" ~contract:"create_deploytx"
      [ Value.Int 1; Value.Text "create"; Value.Text "put_double"; Value.Text deploy_body ]
  in
  let r = deliver h [ propose ] in
  check_identical h r;
  Alcotest.(check bool) "proposed" true (is_committed (List.hd (statuses (List.hd r))));
  (* premature submit fails: not all orgs approved *)
  let r = deliver h [ tx h ~user:"org1/admin" ~contract:"submit_deploytx" [ Value.Int 1 ] ] in
  Alcotest.(check bool) "premature submit aborts" true
    (is_aborted (List.hd (statuses (List.hd r))));
  (* approvals from every org *)
  let approvals =
    List.map
      (fun org -> tx h ~user:(org ^ "/admin") ~contract:"approve_deploytx" [ Value.Int 1 ])
      orgs
  in
  let r = deliver h approvals in
  Alcotest.(check bool) "all approvals commit" true
    (List.for_all is_committed (statuses (List.hd r)));
  (* submit installs the contract *)
  let r = deliver h [ tx h ~user:"org2/admin" ~contract:"submit_deploytx" [ Value.Int 1 ] ] in
  check_identical h r;
  Alcotest.(check bool) "submit commits" true (is_committed (List.hd (statuses (List.hd r))));
  List.iter
    (fun n ->
      Alcotest.(check bool) "contract installed" true
        (Brdb_contracts.Registry.find (Node_core.contracts n) "put_double" <> None))
    h.nodes;
  (* invoke it *)
  let r = deliver h [ tx h ~user:"org1/alice" ~contract:"put_double" [ Value.Int 3; Value.Int 21 ] ] in
  Alcotest.(check bool) "invocation commits" true (is_committed (List.hd (statuses (List.hd r))));
  Alcotest.(check int) "doubled" 42 (query_int (node h 0) "SELECT v FROM kv WHERE k = 3")

let test_deployment_rejection () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  ignore
    (deliver h
       [
         tx h ~user:"org1/admin" ~contract:"create_deploytx"
           [ Value.Int 2; Value.Text "create"; Value.Text "c2"; Value.Text deploy_body ];
       ]);
  let r = deliver h [ tx h ~user:"org2/admin" ~contract:"reject_deploytx" [ Value.Int 2; Value.Text "no" ] ] in
  Alcotest.(check bool) "reject commits" true (is_committed (List.hd (statuses (List.hd r))));
  (* approve after rejection fails *)
  let r = deliver h [ tx h ~user:"org3/admin" ~contract:"approve_deploytx" [ Value.Int 2 ] ] in
  Alcotest.(check bool) "approve after reject aborts" true
    (is_aborted (List.hd (statuses (List.hd r))))

let test_deployment_requires_admin () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  let r =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"create_deploytx"
          [ Value.Int 3; Value.Text "create"; Value.Text "c3"; Value.Text deploy_body ];
      ]
  in
  Alcotest.(check bool) "non-admin aborts" true (is_aborted (List.hd (statuses (List.hd r))))

let test_deployment_determinism_guard () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  let r =
    deliver h
      [
        tx h ~user:"org1/admin" ~contract:"create_deploytx"
          [
            Value.Int 4; Value.Text "create"; Value.Text "bad";
            Value.Text "INSERT INTO kv VALUES ($1, random())";
          ];
      ]
  in
  match statuses (List.hd r) with
  | [ Node_core.S_aborted (Txn.Contract_error msg) ] ->
      Alcotest.(check bool) "mentions determinism" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected determinism rejection"

let test_user_management () =
  let h = setup () in
  init_chain h;
  let carol = Identity.create "org3/carol" in
  let pk_hex = Printf.sprintf "%Lx" (Identity.public_key carol) in
  let r =
    deliver h
      [
        tx h ~user:"org3/admin" ~contract:"create_user"
          [ Value.Text "org3/carol"; Value.Text pk_hex ];
      ]
  in
  check_identical h r;
  Alcotest.(check bool) "create_user commits" true (is_committed (List.hd (statuses (List.hd r))));
  (* Carol can now submit transactions. *)
  h.tx_seq <- h.tx_seq + 1;
  let carol_tx =
    Block.make_tx ~id:(Printf.sprintf "tx-%d" h.tx_seq) ~identity:carol ~contract:"put"
      ~args:[ Value.Int 77; Value.Int 1 ]
  in
  let r = deliver h [ carol_tx ] in
  Alcotest.(check bool) "carol's tx commits" true (is_committed (List.hd (statuses (List.hd r))));
  (* Delete carol; her next transaction is rejected. *)
  let r = deliver h [ tx h ~user:"org3/admin" ~contract:"delete_user" [ Value.Text "org3/carol" ] ] in
  Alcotest.(check bool) "delete commits" true (is_committed (List.hd (statuses (List.hd r))));
  h.tx_seq <- h.tx_seq + 1;
  let carol_tx2 =
    Block.make_tx ~id:(Printf.sprintf "tx-%d" h.tx_seq) ~identity:carol ~contract:"put"
      ~args:[ Value.Int 78; Value.Int 1 ]
  in
  let r = deliver h [ carol_tx2 ] in
  match statuses (List.hd r) with
  | [ Node_core.S_rejected _ ] -> ()
  | _ -> Alcotest.fail "expected rejection after delete"

let test_update_conflict_on_deploy () =
  (* EO: a transaction pre-executes against contract v1; a replacement
     deploys before its block arrives -> Update_conflict_on_deploy. *)
  let h = setup ~flow:Node_core.Execute_order ~n_nodes:1 () in
  init_chain h;
  let t = eo_tx ~user:"org1/alice" ~contract:"put" ~snapshot:1 [ Value.Int 1; Value.Int 1 ] in
  (match Node_core.pre_execute (node h 0) t with Ok () -> () | Error e -> Alcotest.fail e);
  (* Replace 'put' through governance in the meantime. *)
  ignore
    (deliver h
       [
         eo_tx ~user:"org1/admin" ~contract:"create_deploytx" ~snapshot:1
           [ Value.Int 9; Value.Text "replace"; Value.Text "put"; Value.Text deploy_body ];
       ]);
  let approvals =
    List.map
      (fun org ->
        eo_tx ~user:(org ^ "/admin") ~contract:"approve_deploytx" ~snapshot:2 [ Value.Int 9 ])
      orgs
  in
  ignore (deliver h approvals);
  ignore
    (deliver h
       [ eo_tx ~user:"org2/admin" ~contract:"submit_deploytx" ~snapshot:3 [ Value.Int 9 ] ]);
  let r = deliver h [ t ] in
  match statuses (List.hd r) with
  | [ Node_core.S_aborted Txn.Update_conflict_on_deploy ] -> ()
  | [ s ] -> Alcotest.failf "expected deploy conflict, got %s" (Node_core.tx_status_to_string s)
  | _ -> Alcotest.fail "wrong count"

(* ------------------------------------------------------------- provenance *)

let test_provenance_audit () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  ignore (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 10 ] ]);
  ignore (deliver h [ tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 1 ] ]);
  ignore (deliver h [ tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 1 ] ]);
  let n = node h 0 in
  (* full history of the row *)
  Alcotest.(check int) "three versions" 3
    (query_int n "PROVENANCE SELECT COUNT(*) FROM kv WHERE k = 1");
  (* Table-3-style audit: who last modified the live row? *)
  match
    Node_core.query n
      "PROVENANCE SELECT pgledger.txuser FROM kv JOIN pgledger ON kv.xmin = pgledger.txid \
       WHERE kv.k = 1 AND kv.deleter IS NULL AND pgledger.deleter IS NULL"
  with
  | Ok rs -> (
      match rs.Brdb_engine.Exec.rows with
      | [ [| Value.Text user |] ] -> Alcotest.(check string) "last writer" "org2/bob" user
      | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))
  | Error e -> Alcotest.fail e

let test_prune () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  ignore (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 10 ] ]);
  ignore (deliver h [ tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 1 ] ]);
  let n = node h 0 in
  Alcotest.(check int) "history before prune" 2
    (query_int n "PROVENANCE SELECT COUNT(*) FROM kv WHERE k = 1");
  let removed = Node_core.prune n ~before:(Node_core.height n) () in
  Alcotest.(check bool) "something pruned" true (removed >= 1);
  Alcotest.(check int) "history after prune" 1
    (query_int n "PROVENANCE SELECT COUNT(*) FROM kv WHERE k = 1");
  (* live data unaffected *)
  Alcotest.(check int) "live row intact" 11 (query_int n "SELECT v FROM kv WHERE k = 1")

(* ---------------------------------------------------------------- recovery *)

let crash_recovery_scenario ?(atomic_commit = false) crash expect_repair =
  let h = setup ~atomic_commit () in
  init_chain h;
  let txs =
    [
      tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 10 ];
      tx h ~user:"org2/bob" ~contract:"put" [ Value.Int 2; Value.Int 20 ];
      tx h ~user:"org1/alice" ~contract:"bump" [ Value.Int 404 ];
    ]
  in
  (* node 0 crashes mid-block; node 1 processes normally (the reference). *)
  let height = (match h.prev with None -> 0 | Some b -> b.Block.height) + 1 in
  let prev_hash = match h.prev with None -> Block.genesis_hash | Some b -> b.Block.hash in
  let block = Block.sign (Block.create ~height ~txs ~metadata:"test" ~prev_hash) h.orderer in
  h.prev <- Some block;
  Node_core.process_block_with_crash (node h 0) block ~crash;
  let reference =
    match Node_core.process_block (node h 1) block with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* restart node 0 *)
  (match Node_core.recover (node h 0) with
  | Ok (Some repaired) ->
      Alcotest.(check bool) "repair expected" true expect_repair;
      Alcotest.(check string) "write-set hash matches reference"
        (Brdb_util.Hex.encode reference.Node_core.br_write_set_hash)
        (Brdb_util.Hex.encode repaired.Node_core.br_write_set_hash)
  | Ok None -> Alcotest.(check bool) "no repair expected" false expect_repair
  | Error e -> Alcotest.fail e);
  (* state converges *)
  Alcotest.(check int) "kv count equal"
    (query_int (node h 1) "SELECT COUNT(*) FROM kv")
    (query_int (node h 0) "SELECT COUNT(*) FROM kv");
  (* both nodes keep working afterwards *)
  let r = deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 99; Value.Int 9 ] ] in
  check_identical h r

let test_recover_after_ledger_entries () =
  crash_recovery_scenario Node_core.Crash_after_ledger_entries true

let test_recover_mid_commit () =
  crash_recovery_scenario (Node_core.Crash_mid_commit 1) true

let test_recover_before_status_step () =
  crash_recovery_scenario Node_core.Crash_before_status_step true

let test_recover_atomic_commit_mid_crash () =
  (* §3.6 remark: with atomic whole-block commit a mid-block crash leaves
     no partial state; recovery always re-executes the block and converges. *)
  crash_recovery_scenario ~atomic_commit:true (Node_core.Crash_mid_commit 2) true

let test_recover_atomic_commit_before_status () =
  crash_recovery_scenario ~atomic_commit:true Node_core.Crash_before_status_step true

let test_recover_noop_when_consistent () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  ignore (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 1 ] ]);
  match Node_core.recover (node h 0) with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "unexpected repair"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------- tampering *)

let test_block_store_tamper_detection () =
  let h = setup ~n_nodes:1 () in
  init_chain h;
  ignore (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 1 ] ]);
  let store = Node_core.block_store (node h 0) in
  (match Brdb_ledger.Block_store.audit store h.registry with
  | Ok () -> ()
  | Error height -> Alcotest.failf "clean chain flagged at %d" height);
  (* Tamper with block 2's transactions. *)
  (match Brdb_ledger.Block_store.get store 2 with
  | None -> Alcotest.fail "block 2 missing"
  | Some b ->
      let forged = { b with Block.txs = [] } in
      Brdb_ledger.Block_store.tamper_for_test store 2 forged);
  match Brdb_ledger.Block_store.audit store h.registry with
  | Ok () -> Alcotest.fail "tampering undetected"
  | Error height -> Alcotest.(check int) "detected at block 2" 2 height

let test_checkpoint_divergence () =
  let cp = Brdb_ledger.Checkpoint.create ~self:"db-1" ~peers:[ "db-1"; "db-2"; "db-3" ] in
  Brdb_ledger.Checkpoint.record_local cp ~height:1 ~hash:"aaa";
  Brdb_ledger.Checkpoint.receive cp ~from:"db-2" ~height:1 ~hash:"aaa";
  Brdb_ledger.Checkpoint.receive cp ~from:"db-3" ~height:1 ~hash:"bbb";
  Alcotest.(check (list string)) "db-3 diverges" [ "db-3" ]
    (Brdb_ledger.Checkpoint.divergent cp ~height:1);
  Alcotest.(check int) "not checkpointed" 0 (Brdb_ledger.Checkpoint.checkpointed_height cp);
  Brdb_ledger.Checkpoint.receive cp ~from:"db-3" ~height:1 ~hash:"aaa";
  Alcotest.(check int) "checkpointed" 1 (Brdb_ledger.Checkpoint.checkpointed_height cp)

(* ------------------------------------------- parallel validation (ISSUE 8) *)

(* One serial node and one wave-scheduled node process identical blocks;
   decisions, write-set hashes and the resulting state must match exactly
   (DESIGN.md §14). [br_waves] is read off the parallel node (index 1). *)
let parallel_pair () =
  let h = setup ~parallel:(fun i -> i = 1) () in
  init_chain h;
  h

let test_parallel_ww_chain_one_block () =
  let h = parallel_pair () in
  ignore
    (deliver h [ tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 1; Value.Int 0 ] ]);
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"bump" [ Value.Int 1 ];
        tx h ~user:"org2/bob" ~contract:"bump" [ Value.Int 1 ];
        tx h ~user:"org2/bob" ~contract:"put" [ Value.Int 5; Value.Int 5 ];
      ]
  in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ s0; s1; s2 ] ->
      Alcotest.(check bool) "first bump commits" true (is_committed s0);
      Alcotest.(check bool) "second bump aborts (ww)" true (is_aborted s1);
      Alcotest.(check bool) "independent put commits" true (is_committed s2)
  | _ -> Alcotest.fail "expected 3 statuses");
  (* the ww claim chain forces the bumps into successive waves; the
     independent put stays in wave 0 *)
  let pr = List.nth results 1 in
  Alcotest.(check (array int)) "waves" [| 0; 1; 0 |] pr.Node_core.br_waves;
  List.iter
    (fun n ->
      Alcotest.(check int) "k=1 bumped exactly once" 1
        (query_int n "SELECT v FROM kv WHERE k = 1"))
    h.nodes

let test_parallel_rw_edge_across_waves () =
  let h = parallel_pair () in
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"withdraw" [ Value.Int 1; Value.Int 2 ];
        tx h ~user:"org2/bob" ~contract:"withdraw" [ Value.Int 2; Value.Int 1 ];
      ]
  in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ s0; s1 ] ->
      Alcotest.(check bool) "first withdraw commits" true (is_committed s0);
      Alcotest.(check bool) "second aborts (write skew)" true (is_aborted s1)
  | _ -> Alcotest.fail "expected 2 statuses");
  let pr = List.nth results 1 in
  Alcotest.(check bool) "rw edge separates the waves" true
    (pr.Node_core.br_waves.(0) < pr.Node_core.br_waves.(1))

let test_parallel_duplicate_pk_waves () =
  let h = parallel_pair () in
  let results =
    deliver h
      [
        tx h ~user:"org1/alice" ~contract:"put" [ Value.Int 7; Value.Int 1 ];
        tx h ~user:"org2/bob" ~contract:"put" [ Value.Int 7; Value.Int 2 ];
      ]
  in
  check_identical h results;
  (match statuses (List.hd results) with
  | [ s0; s1 ] ->
      Alcotest.(check bool) "first insert commits" true (is_committed s0);
      Alcotest.(check bool) "duplicate pk aborts" true (is_aborted s1)
  | _ -> Alcotest.fail "expected 2 statuses");
  (* without the unique-key chain both inserts would sit in wave 0 and the
     parallel node would commit both where the serial node aborts one *)
  let pr = List.nth results 1 in
  Alcotest.(check (array int)) "unique-key chain separates waves" [| 0; 1 |]
    pr.Node_core.br_waves;
  List.iter
    (fun n ->
      Alcotest.(check int) "winner's value survives" 1
        (query_int n "SELECT v FROM kv WHERE k = 7"))
    h.nodes

let suites =
  [
    ( "node.oe",
      [
        Alcotest.test_case "basic commit" `Quick test_oe_basic_commit;
        Alcotest.test_case "empty block" `Quick test_empty_block;
        Alcotest.test_case "ledger records" `Quick test_oe_ledger_records;
        Alcotest.test_case "bad signature" `Quick test_oe_bad_signature_rejected;
        Alcotest.test_case "unknown user" `Quick test_oe_unknown_user_rejected;
        Alcotest.test_case "duplicate txid" `Quick test_oe_duplicate_txid;
        Alcotest.test_case "contract failure" `Quick test_oe_contract_failure_aborts;
        Alcotest.test_case "unknown contract" `Quick test_oe_unknown_contract_aborts;
        Alcotest.test_case "write skew detected" `Quick test_oe_write_skew_detected;
        Alcotest.test_case "write skew across blocks" `Quick test_oe_write_skew_sequential_blocks_ok;
        Alcotest.test_case "ww first in block wins" `Quick test_oe_ww_first_in_block_wins;
        Alcotest.test_case "duplicate pk in block" `Quick test_oe_duplicate_pk_in_block;
        Alcotest.test_case "same-block read-your-write aborts" `Quick
          test_oe_same_block_insert_then_bump_aborts;
      ] );
    ( "node.eo",
      [
        Alcotest.test_case "pre-execute and commit" `Quick test_eo_pre_execute_and_commit;
        Alcotest.test_case "stale read aborts" `Quick test_eo_stale_read_aborts;
        Alcotest.test_case "phantom aborts" `Quick test_eo_phantom_aborts;
        Alcotest.test_case "cross-block write skew" `Quick test_eo_concurrent_cross_block;
        Alcotest.test_case "requires index" `Quick test_eo_requires_index;
        Alcotest.test_case "blind update rejected" `Quick test_eo_blind_update_rejected;
      ] );
    ( "node.serial",
      [
        Alcotest.test_case "baseline sees predecessors" `Quick test_serial_baseline_sees_predecessors;
      ] );
    ( "node.governance",
      [
        Alcotest.test_case "deployment workflow" `Quick test_deployment_workflow;
        Alcotest.test_case "rejection" `Quick test_deployment_rejection;
        Alcotest.test_case "requires admin" `Quick test_deployment_requires_admin;
        Alcotest.test_case "determinism guard" `Quick test_deployment_determinism_guard;
        Alcotest.test_case "user management" `Quick test_user_management;
        Alcotest.test_case "update conflict on deploy" `Quick test_update_conflict_on_deploy;
      ] );
    ( "node.provenance",
      [
        Alcotest.test_case "audit queries" `Quick test_provenance_audit;
        Alcotest.test_case "prune" `Quick test_prune;
      ] );
    ( "node.recovery",
      [
        Alcotest.test_case "crash after ledger entries" `Quick test_recover_after_ledger_entries;
        Alcotest.test_case "crash mid-commit" `Quick test_recover_mid_commit;
        Alcotest.test_case "crash before status step" `Quick test_recover_before_status_step;
        Alcotest.test_case "atomic block commit: mid-crash" `Quick test_recover_atomic_commit_mid_crash;
        Alcotest.test_case "atomic block commit: before status" `Quick
          test_recover_atomic_commit_before_status;
        Alcotest.test_case "no-op when consistent" `Quick test_recover_noop_when_consistent;
      ] );
    ( "node.parallel",
      [
        Alcotest.test_case "ww chain splits waves, state identical" `Quick
          test_parallel_ww_chain_one_block;
        Alcotest.test_case "rw edge crosses a wave boundary" `Quick
          test_parallel_rw_edge_across_waves;
        Alcotest.test_case "duplicate pk forced into later wave" `Quick
          test_parallel_duplicate_pk_waves;
      ] );
    ( "node.security",
      [
        Alcotest.test_case "block store tampering" `Quick test_block_store_tamper_detection;
        Alcotest.test_case "checkpoint divergence" `Quick test_checkpoint_divergence;
      ] );
  ]
