(** Chaos suite: seeded fault schedules against a full cluster.

    Asserts the ISSUE's load-bearing invariants: under crashes (clean and
    §3.6 mid-block), healing partitions, and up to 10% message loss, all
    live nodes converge to identical block-store and per-block write-set
    hashes, commit/abort decisions match, and every client request reaches
    a final status once faults heal. Every suite name starts with "chaos"
    so [dune build @chaos] can select it standalone. *)

module B = Brdb_core.Blockchain_db
module Chaos = Brdb_core.Chaos
module Peer = Brdb_node.Peer
module Node_core = Brdb_node.Node_core
module Msg = Brdb_consensus.Msg
module Network = Brdb_sim.Network
module Checkpoint = Brdb_ledger.Checkpoint
module Value = Brdb_storage.Value
module Service = Brdb_consensus.Service
module Block = Brdb_ledger.Block
module Block_store = Brdb_ledger.Block_store
module Identity = Brdb_crypto.Identity

(* Small enough to keep the whole suite inside the 2 s runtest budget,
   large enough that every run cuts tens of blocks under faults. *)
let spec_for seed =
  {
    Chaos.default_spec with
    Chaos.seed;
    rate = 120.;
    duration = 1.0;
    block_size = 8;
    (* sweep loss up to the 10% ceiling as seeds advance *)
    drop = 0.02 +. (0.004 *. float_of_int (seed mod 20));
    duplicate = 0.02;
    crashes = 1;
    partitions = 1;
    crash_points = seed mod 2 = 1;
  }

let check_report seed (r : Chaos.report) =
  if not r.Chaos.converged then
    Alcotest.failf "seed %d did not converge: %a" seed Chaos.pp_report r;
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: no divergent node" seed)
    [] r.Chaos.divergent;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: every slot decided" seed)
    r.Chaos.submitted r.Chaos.decided

let test_converges_across_seeds () =
  let total_fetched = ref 0 in
  let total_dropped = ref 0 in
  for seed = 1 to 20 do
    let r = Chaos.run (spec_for seed) in
    check_report seed r;
    total_fetched := !total_fetched + r.Chaos.fetched_blocks;
    total_dropped := !total_dropped + r.Chaos.dropped
  done;
  (* the sweep actually exercised the machinery under test *)
  Alcotest.(check bool) "faults actually dropped messages" true (!total_dropped > 0);
  Alcotest.(check bool) "catch-up actually fetched blocks" true (!total_fetched > 0)

let test_same_seed_is_deterministic () =
  let spec = { (spec_for 11) with Chaos.crashes = 2 } in
  let a = Chaos.run spec in
  let b = Chaos.run spec in
  check_report 11 a;
  Alcotest.(check string) "byte-identical replicated state" a.Chaos.fingerprint
    b.Chaos.fingerprint;
  Alcotest.(check int) "same message loss" a.Chaos.dropped b.Chaos.dropped;
  Alcotest.(check int) "same resubmissions" a.Chaos.resubmitted b.Chaos.resubmitted

(* --- §3.6 crash points driven through the peer path ---------------------- *)

(* A cluster with 5% peer-to-peer message loss and an active workload; the
   victim dies mid-block at [point] and must rejoin with an identical
   chain once restarted. *)
let crash_point_scenario point () =
  let config =
    {
      (B.default_config ()) with
      B.block_size = 5;
      block_timeout = 0.05;
      seed = 97;
    }
  in
  let db = B.create config in
  B.install_contract db ~name:"setup"
    (Brdb_contracts.Registry.Native
       (fun ctx ->
         ignore
           (Brdb_contracts.Api.execute ctx
              "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")));
  (match
     B.install_contract_source db ~name:"put" "INSERT INTO kv VALUES ($1, $2)"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let admin = B.admin db "org1" in
  let setup = B.submit db ~user:admin ~contract:"setup" ~args:[] in
  B.settle db;
  Alcotest.(check bool) "setup committed" true (B.status db setup = Some B.Committed);
  (* 5% loss between all peers while the workload runs *)
  let netw = B.net db in
  let names = List.map Peer.name (B.peers db) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            Msg.Net.set_fault netw ~src:a ~dst:b
              { Network.drop = 0.05; duplicate = 0.02; corrupt = 0. })
        names)
    names;
  let user = B.register_user db "alice" in
  let clock = B.clock db in
  for i = 0 to 39 do
    Brdb_sim.Clock.schedule clock ~delay:(float_of_int i *. 0.02) (fun () ->
        ignore
          (B.submit db ~user ~contract:"put"
             ~args:[ Value.Int i; Value.Int (i * 3) ]))
  done;
  let victim = B.peer db 1 in
  B.run db ~seconds:0.2;
  Peer.crash ~at:point victim;
  B.run db ~seconds:0.3;
  Peer.restart victim;
  B.settle db;
  Msg.Net.clear_faults netw;
  B.run db ~seconds:2.0;
  (* every node ends on the same chain, and the rolled-back block was
     re-executed with an identical write set *)
  let p0 = B.peer db 0 in
  let h0 = Node_core.height (Peer.core p0) in
  Alcotest.(check bool) "made progress" true (h0 > 1);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Peer.name p ^ " same height")
        h0
        (Node_core.height (Peer.core p));
      for h = 1 to h0 do
        Alcotest.(check bool)
          (Printf.sprintf "%s write-set hash at height %d" (Peer.name p) h)
          true
          (Checkpoint.local_hash (Peer.checkpoints p) ~height:h
          = Checkpoint.local_hash (Peer.checkpoints p0) ~height:h
          && Checkpoint.local_hash (Peer.checkpoints p) ~height:h <> None)
      done)
    (B.peers db);
  Alcotest.(check int) "every tx decided" (B.submitted_count db)
    (B.decided_count db)

(* --- bounded inbox -------------------------------------------------------- *)

let test_partition_heals () =
  (* a partitioned node misses whole blocks, then rejoins via catch-up
     alone (no message loss to confuse attribution) *)
  let r =
    Chaos.run
      {
        Chaos.default_spec with
        Chaos.seed = 5;
        rate = 120.;
        duration = 1.0;
        drop = 0.;
        duplicate = 0.;
        crashes = 0;
        partitions = 2;
      }
  in
  check_report 5 r;
  Alcotest.(check bool) "partition dropped messages" true (r.Chaos.dropped > 0);
  Alcotest.(check bool) "blocks recovered by fetch" true (r.Chaos.fetched_blocks > 0)

(* --- orderer-fault chaos (ISSUE: byzantine-resilient ordering plane) ------ *)

let test_bft_primary_crash_converges () =
  (* 4 BFT orderers (f = 1) with the primary crashed mid-run: the
     survivors must vote it out, resume cutting, and leave the cluster on
     a byte-identical replicated state across two runs of the spec. *)
  let spec =
    {
      Chaos.default_spec with
      Chaos.seed = 11;
      ordering = Service.Bft;
      n_orderers = 4;
      orderer_crashes = 1;
      rate = 60.;
      duration = 1.5;
      crashes = 0;
      partitions = 0;
    }
  in
  let a = Chaos.run spec in
  check_report 11 a;
  Alcotest.(check int) "orderer crash cycle fired" 1 a.Chaos.orderer_crash_cycles;
  Alcotest.(check bool) "primary was voted out" true (a.Chaos.view_changes >= 1);
  Alcotest.(check (list string)) "no decision mismatches" []
    a.Chaos.decision_mismatches;
  let b = Chaos.run spec in
  Alcotest.(check string) "byte-identical across runs" a.Chaos.fingerprint
    b.Chaos.fingerprint

let test_raft_leader_crash_converges () =
  (* Raft ordering with the leader crashed mid-run: a re-election must be
     observed and cutting must resume. *)
  let spec =
    {
      Chaos.default_spec with
      Chaos.seed = 3;
      ordering = Service.Raft;
      n_orderers = 3;
      orderer_crashes = 1;
      rate = 60.;
      duration = 1.5;
      crashes = 0;
      partitions = 0;
    }
  in
  let r = Chaos.run spec in
  check_report 3 r;
  Alcotest.(check int) "orderer crash cycle fired" 1 r.Chaos.orderer_crash_cycles;
  Alcotest.(check bool) "leader crash forced a re-election" true
    (r.Chaos.elections >= 1)

let test_block_tamper_rejected () =
  (* Every block towards the victim peer is bit-flipped in flight: §4.4
     admission must reject all of them, catch-up must recover every
     height from an honest peer, and no tampered block may commit. *)
  let spec =
    {
      Chaos.default_spec with
      Chaos.seed = 7;
      block_tamper = 1.0;
      crashes = 0;
      partitions = 0;
    }
  in
  let r = Chaos.run spec in
  check_report 7 r;
  Alcotest.(check bool) "tampered deliveries rejected" true
    (r.Chaos.blocks_rejected > 0);
  Alcotest.(check int) "tampering actually fired" r.Chaos.blocks_rejected
    r.Chaos.corrupted;
  Alcotest.(check (list string)) "no decision mismatches" []
    r.Chaos.decision_mismatches

let test_client_forge_rejected () =
  (* Every in-window client submission has its Schnorr signature
     bit-flipped in flight (ISSUE 10): ordering-side batch authentication
     must drop every forged transaction before a block is cut, the
     auth_rejection_burst detector must notice, and §3.5 resubmission
     must still land a clean copy of every slot after the network heals. *)
  let spec =
    {
      Chaos.default_spec with
      Chaos.seed = 11;
      client_forge = 1.0;
      drop = 0.;
      duplicate = 0.;
      crashes = 0;
      partitions = 0;
    }
  in
  let r = Chaos.run spec in
  check_report 11 r;
  Alcotest.(check bool) "forged submissions dropped" true
    (r.Chaos.forged_rejected > 0);
  Alcotest.(check int) "every mangled payload was rejected"
    r.Chaos.corrupted r.Chaos.forged_rejected;
  Alcotest.(check bool) "auth burst alert fired" true
    (List.mem_assoc "auth_rejection_burst" r.Chaos.alerts_fired);
  Alcotest.(check (list string)) "client_forge covered by an alert" []
    (List.map Chaos.fault_id r.Chaos.uncovered_faults)

let test_equivocating_block_rejected () =
  (* A validly-signed sibling block at an already-known height (orderer
     identities are deterministic, so a byzantine orderer is easy to
     fake) must be refused without disturbing the committed chain. *)
  let db = B.create { (B.default_config ()) with B.block_size = 2; seed = 23 } in
  B.install_contract db ~name:"setup"
    (Brdb_contracts.Registry.Native
       (fun ctx ->
         ignore
           (Brdb_contracts.Api.execute ctx
              "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")));
  let admin = B.admin db "org1" in
  ignore (B.submit db ~user:admin ~contract:"setup" ~args:[]);
  B.settle db;
  let victim = B.peer db 0 in
  let store = Node_core.block_store (Peer.core victim) in
  let honest_hash =
    match Block_store.get store 1 with
    | Some b -> b.Block.hash
    | None -> Alcotest.fail "no block at height 1"
  in
  let evil =
    Block.sign
      (Block.create ~height:1 ~txs:[] ~metadata:"equivocation"
         ~prev_hash:Block.genesis_hash)
      (Identity.create "orderer/orderer-1")
  in
  Alcotest.(check bool) "sibling passes signature checks" true
    (Block.verify (Node_core.identity_registry (Peer.core victim)) evil);
  let netw = B.net db in
  ignore
    (Msg.Net.send netw ~src:"orderer-1" ~dst:(Peer.name victim)
       ~size_bytes:(Msg.size (Msg.Block_deliver evil))
       (Msg.Block_deliver evil));
  B.run db ~seconds:1.0;
  Alcotest.(check bool) "equivocation counted" true (Peer.blocks_rejected victim >= 1);
  (match Block_store.get store 1 with
  | Some b ->
      Alcotest.(check string) "committed chain untouched" honest_hash b.Block.hash
  | None -> Alcotest.fail "height 1 vanished");
  (* a tampered payload (hash mismatch) is likewise refused *)
  let tampered =
    match Block_store.get store 1 with
    | Some b -> { b with Block.hash = "0" ^ b.Block.hash }
    | None -> assert false
  in
  let before = Peer.blocks_rejected victim in
  ignore
    (Msg.Net.send netw ~src:"orderer-1" ~dst:(Peer.name victim)
       ~size_bytes:(Msg.size (Msg.Block_deliver tampered))
       (Msg.Block_deliver tampered));
  B.run db ~seconds:1.0;
  Alcotest.(check bool) "bad hash counted" true (Peer.blocks_rejected victim > before)

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "20 seeds converge" `Quick test_converges_across_seeds;
        Alcotest.test_case "same seed, same bytes" `Quick
          test_same_seed_is_deterministic;
        Alcotest.test_case "partition heals via fetch" `Quick test_partition_heals;
      ] );
    ( "chaos.ordering",
      [
        Alcotest.test_case "bft primary crash converges" `Quick
          test_bft_primary_crash_converges;
        Alcotest.test_case "raft leader crash converges" `Quick
          test_raft_leader_crash_converges;
        Alcotest.test_case "tampered blocks rejected" `Quick
          test_block_tamper_rejected;
        Alcotest.test_case "forged client txs rejected" `Quick
          test_client_forge_rejected;
        Alcotest.test_case "equivocating block rejected" `Quick
          test_equivocating_block_rejected;
      ] );
    ( "chaos.crash-points",
      [
        Alcotest.test_case "crash after ledger entries" `Quick
          (crash_point_scenario Node_core.Crash_after_ledger_entries);
        Alcotest.test_case "crash mid-commit" `Quick
          (crash_point_scenario (Node_core.Crash_mid_commit 1));
        Alcotest.test_case "crash before status step" `Quick
          (crash_point_scenario Node_core.Crash_before_status_step);
      ] );
  ]
