(* Observability: deterministic tracing, metrics registry, abort taxonomy,
   exporters, and the end-to-end guarantees (tracing is side-effect-free;
   traces are byte-identical for equal seeds). *)

module B = Brdb_core.Blockchain_db
module Chaos = Brdb_core.Chaos
module Value = Brdb_storage.Value
module Node_core = Brdb_node.Node_core
module Peer = Brdb_node.Peer
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api
module Txn = Brdb_txn.Txn
module Trace = Brdb_obs.Trace
module Reg = Brdb_obs.Registry
module Abort_class = Brdb_obs.Abort_class
module Export = Brdb_obs.Export
module Critical_path = Brdb_obs.Critical_path
module Metrics = Brdb_sim.Metrics

(* --- a tiny JSON validity parser (syntax only) ----------------------------- *)

exception Bad_json of string

let validate_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    let digits () =
      let seen = ref false in
      while match peek () with Some '0' .. '9' -> true | _ -> false do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let literal lit =
    String.iter (fun c -> if peek () = Some c then advance () else fail lit) lit
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let fin = ref false in
          while not !fin do
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                fin := true
            | _ -> fail "expected , or }"
          done
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let fin = ref false in
          while not !fin do
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                fin := true
            | _ -> fail "expected , or ]"
          done
    | Some '"' -> parse_string ()
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let check_valid_json label s =
  match validate_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON: %s" label msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- tracing core ---------------------------------------------------------- *)

let test_null_tracer () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.complete t ~node:"n" ~name:"x" ~ts:0. ~dur:1. ();
  Trace.instant t ~node:"n" ~name:"y" ();
  Trace.async_begin t ~node:"n" ~name:"z" ~id:"t1" ();
  Trace.async_end t ~node:"n" ~name:"z" ~id:"t1" ();
  Trace.counter t ~node:"n" ~name:"c" ~value:1. ();
  Alcotest.(check int) "no events recorded" 0 (Trace.count t);
  Alcotest.(check bool) "empty" true (Trace.events t = [])

let test_event_ordering () =
  let now = ref 0. in
  let t = Trace.create ~now:(fun () -> !now) () in
  Alcotest.(check bool) "enabled" true (Trace.enabled t);
  Trace.instant t ~node:"a" ~name:"first" ();
  now := 1.5;
  Trace.complete t ~node:"b" ~name:"span" ~ts:0.5 ~dur:1.
    ~args:[ ("k", Trace.I 7) ]
    ();
  Trace.instant t ~node:"a" ~name:"second" ();
  let evs = Trace.events t in
  Alcotest.(check (list int)) "dense seq" [ 0; 1; 2 ]
    (List.map (fun e -> e.Trace.seq) evs);
  Alcotest.(check (list string)) "emission order"
    [ "first"; "span"; "second" ]
    (List.map (fun e -> e.Trace.name) evs);
  let span = List.nth evs 1 in
  Alcotest.(check (float 0.)) "back-dated ts" 0.5 span.Trace.ts;
  Alcotest.(check (float 0.)) "dur" 1. span.Trace.dur;
  Alcotest.(check (float 0.)) "instant uses now" 1.5 (List.nth evs 2).Trace.ts;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.count t)

(* --- exporters ------------------------------------------------------------- *)

let sample_events () =
  let now = ref 0.001 in
  let t = Trace.create ~now:(fun () -> !now) () in
  Trace.async_begin t ~node:"client" ~cat:"txn" ~name:"lifecycle" ~id:"tx-1"
    ~args:[ ("user", Trace.S "org1/alice") ]
    ();
  Trace.complete t ~node:"db-org1" ~track:"block" ~cat:"block"
    ~name:"block 1" ~ts:0.001 ~dur:0.01
    ~args:
      [ ("height", Trace.I 1); ("f", Trace.F 0.25); ("ok", Trace.B true) ]
    ();
  now := 0.012;
  Trace.instant t ~node:"db-org1" ~track:"txn" ~name:"commit"
    ~args:[ ("quote\"new\nline", Trace.S "tab\there") ]
    ();
  Trace.async_end t ~node:"client" ~cat:"txn" ~name:"lifecycle" ~id:"tx-1" ();
  Trace.events t

let test_jsonl_export () =
  let evs = sample_events () in
  let out = Export.jsonl_string evs in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one line per event" (List.length evs)
    (List.length lines);
  List.iter (fun l -> check_valid_json "jsonl line" l) lines;
  (* byte-identical across renders of the same stream *)
  Alcotest.(check string) "deterministic" out (Export.jsonl_string evs)

let test_chrome_export () =
  let evs = sample_events () in
  let out = Export.chrome_string evs in
  check_valid_json "chrome trace" out;
  Alcotest.(check string) "deterministic" out (Export.chrome_string evs);
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (contains needle))
    [
      "\"traceEvents\"";
      "\"process_name\"";
      "\"thread_name\"";
      "\"ph\":\"X\"";
      "\"ph\":\"b\"";
      "\"ph\":\"e\"";
      "\"id\":\"tx-1\"";
    ]

let test_causal_export () =
  let t = Trace.create ~now:(fun () -> 0.5) () in
  Trace.complete t ~node:"db-org1" ~track:"block" ~cat:"block" ~name:"block 1"
    ~ts:0. ~dur:0.01 ~span:"block/1" ~parent:"order/1"
    ~args:[ ("height", Trace.I 1); ("local_ms", Trace.F 9.) ]
    ();
  Trace.instant t ~node:"db-org1" ~track:"txn" ~cat:"txn" ~name:"validate"
    ~parent:"exec/1" ~follows:"tx/a"
    ~args:[ ("tx", Trace.S "a"); ("reason", Trace.S "node-local detail") ]
    ();
  (* net-track events are delivery-dependent: excluded from the causal
     projection even on the projected node *)
  Trace.instant t ~node:"db-org1" ~track:"net" ~cat:"net" ~name:"block_deliver"
    ~span:"order/1" ();
  Trace.instant t ~node:"db-org2" ~track:"txn" ~cat:"txn" ~name:"validate"
    ~parent:"exec/1" ~follows:"tx/a"
    ~args:[ ("tx", Trace.S "a") ]
    ();
  (* a replayed duplicate (crash recovery re-emission) must deduplicate *)
  Trace.instant t ~node:"db-org1" ~track:"txn" ~cat:"txn" ~name:"validate"
    ~parent:"exec/1" ~follows:"tx/a"
    ~args:[ ("tx", Trace.S "a"); ("reason", Trace.S "node-local detail") ]
    ();
  let evs = Trace.events t in
  (* the causal fields render in both full exporters *)
  let jsonl = Export.jsonl_string evs in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("jsonl carries " ^ needle) true
        (contains jsonl needle))
    [ "\"span\":\"block/1\""; "\"parent\":\"order/1\""; "\"follows\":\"tx/a\"" ];
  check_valid_json "chrome with span contexts" (Export.chrome_string evs);
  let c1 = Export.causal_jsonl ~node:"db-org1" evs in
  let lines s = String.split_on_char '\n' (String.trim s) in
  List.iter (fun l -> check_valid_json "causal line" l) (lines c1);
  Alcotest.(check int) "block + validate, net excluded, replay deduped" 2
    (List.length (lines c1));
  Alcotest.(check bool) "node name normalized" true
    (contains c1 "\"node\":\"node\"" && not (contains c1 "db-org1"));
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " stripped from causal view") false
        (contains c1 needle))
    [ "\"ts\""; "\"dur\""; "\"seq\""; "local_ms"; "node-local detail" ];
  Alcotest.(check bool) "replicated args survive" true
    (contains c1 "\"height\"" && contains c1 "\"tx\"");
  (* db-org2 saw only the validate — its projection is that single line *)
  Alcotest.(check int) "other node projects its own events" 1
    (List.length (lines (Export.causal_jsonl ~node:"db-org2" evs)))

(* --- metrics percentiles ---------------------------------------------------- *)

let test_percentile_interpolation () =
  let p values q =
    let s = Metrics.Stat.create () in
    List.iter (Metrics.Stat.add s) values;
    Metrics.Stat.percentile s q
  in
  Alcotest.(check (float 0.)) "empty -> 0" 0. (p [] 50.);
  Alcotest.(check (float 0.)) "n=1 p50" 5. (p [ 5. ] 50.);
  Alcotest.(check (float 0.)) "n=1 p95" 5. (p [ 5. ] 95.);
  (* linear interpolation at small n: rank (n-1)*p/100 between neighbors *)
  Alcotest.(check (float 1e-9)) "n=2 p50 is the midpoint" 2. (p [ 3.; 1. ] 50.);
  Alcotest.(check (float 1e-9)) "n=2 p95 interpolates" 2.9 (p [ 1.; 3. ] 95.);
  Alcotest.(check (float 0.)) "p0 = min" 1. (p [ 3.; 1. ] 0.);
  Alcotest.(check (float 0.)) "p100 = max" 3. (p [ 1.; 3. ] 100.);
  Alcotest.(check (float 0.)) "clamped below" 1. (p [ 1.; 3. ] (-20.));
  Alcotest.(check (float 0.)) "clamped above" 3. (p [ 1.; 3. ] 250.);
  Alcotest.(check (float 1e-9)) "odd n p50 is the median" 30.
    (p [ 50.; 10.; 40.; 20.; 30. ] 50.);
  Alcotest.(check (float 1e-9)) "even n p50 interpolates between middles" 25.
    (p [ 40.; 10.; 30.; 20. ] 50.)

(* --- registry -------------------------------------------------------------- *)

let test_registry_kinds () =
  let r = Reg.create () in
  Reg.incr r ~node:"a" "hits";
  Reg.incr ~by:4 r ~node:"a" "hits";
  Alcotest.(check int) "counter" 5 (Reg.counter r ~node:"a" "hits");
  Alcotest.(check int) "absent counter" 0 (Reg.counter r ~node:"z" "hits");
  Reg.set r ~node:"a" "depth" 3.5;
  Reg.set r ~node:"a" "depth" 4.5;
  Alcotest.(check (float 0.)) "gauge overwrites" 4.5 (Reg.gauge r ~node:"a" "depth");
  Reg.observe r ~node:"a" "lat" 1.;
  Reg.observe r ~node:"a" "lat" 3.;
  (match Reg.histogram r ~node:"a" "lat" with
  | Some s ->
      Alcotest.(check int) "hist count" 2 (Metrics.Stat.count s);
      Alcotest.(check (float 0.)) "hist mean" 2. (Metrics.Stat.mean s)
  | None -> Alcotest.fail "histogram missing");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: metric \"hits\" is a counter, not a gauge")
    (fun () -> Reg.set r ~node:"a" "hits" 1.)

let test_registry_views () =
  let r = Reg.create () in
  (* insertion order deliberately scrambled; views must sort *)
  Reg.incr ~by:2 r ~node:"n2" "txn.committed";
  Reg.incr ~by:3 r ~node:"n1" "txn.committed";
  Reg.observe r ~node:"n2" "lat" 10.;
  Reg.observe r ~node:"n1" "lat" 2.;
  Reg.observe r ~node:"n1" "lat" 4.;
  Reg.set r ~node:"n1" "depth" 1.5;
  let keys = List.map (fun e -> (e.Reg.e_name, e.Reg.e_node)) (Reg.snapshot r) in
  Alcotest.(check (list (pair string string)))
    "snapshot sorted by (name, node)"
    [ ("depth", "n1"); ("lat", "n1"); ("lat", "n2");
      ("txn.committed", "n1"); ("txn.committed", "n2") ]
    keys;
  Alcotest.(check (list string)) "nodes sorted" [ "n1"; "n2" ] (Reg.nodes r);
  Alcotest.(check int) "node view size" 3
    (List.length (Reg.node_view r ~node:"n1"));
  let cluster = Reg.cluster_view r in
  let find name = List.find (fun e -> e.Reg.e_name = name) cluster in
  Alcotest.(check int) "counters sum" 5 (find "txn.committed").Reg.e_count;
  let lat = find "lat" in
  Alcotest.(check int) "histograms merge" 3 lat.Reg.e_count;
  Alcotest.(check (float 1e-9)) "merged max" 10. lat.Reg.e_max;
  List.iter
    (fun e -> Alcotest.(check string) "cluster node" "cluster" e.Reg.e_node)
    cluster

(* --- abort taxonomy -------------------------------------------------------- *)

let test_abort_classes () =
  let names = List.map Abort_class.to_string Abort_class.all in
  Alcotest.(check int) "class names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  let check reason cls =
    Alcotest.(check string)
      (Txn.abort_reason_to_string reason)
      (Abort_class.to_string cls)
      (Abort_class.to_string (Abort_class.of_reason reason))
  in
  (* plain SSI rules vs the block-aware Table 2 rules *)
  check (Txn.Ssi_conflict "dangerous-structure") Abort_class.Rw_antidependency;
  check (Txn.Ssi_conflict "pivot-committed-out") Abort_class.Rw_antidependency;
  List.iter
    (fun rule -> check (Txn.Ssi_conflict rule) Abort_class.Block_aware_commit)
    Abort_class.block_aware_rules;
  check (Txn.Ww_conflict 7) Abort_class.Lost_update;
  check Txn.Stale_read Abort_class.Stale_read;
  check Txn.Phantom_read Abort_class.Phantom_read;
  check (Txn.Duplicate_key "t.id=1") Abort_class.Uniqueness;
  check Txn.Duplicate_txid Abort_class.Duplicate_txid;
  check (Txn.Missing_index "t.v") Abort_class.Index_restriction;
  check (Txn.Blind_update "t") Abort_class.Index_restriction;
  check (Txn.Contract_error "boom") Abort_class.Contract_failure;
  check Txn.Update_conflict_on_deploy Abort_class.Deploy_conflict;
  (* fault-plane rollbacks are classed as chaos, not contract failures *)
  List.iter
    (fun marker -> check (Txn.Contract_error marker) Abort_class.Chaos_induced)
    Abort_class.chaos_markers

(* --- end to end ------------------------------------------------------------ *)

let init_net ?(tracing = false) ?(flow = Node_core.Order_execute) () =
  let config =
    {
      (B.default_config ()) with
      B.flow;
      block_size = 5;
      block_timeout = 0.25;
      tracing;
    }
  in
  let net = B.create config in
  B.install_contract net ~name:"init"
    (Registry.Native
       (fun ctx ->
         ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")));
  (match
     B.install_contract_source net ~name:"put" "INSERT INTO kv VALUES ($1, $2)"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let admin = B.admin net "org1" in
  ignore (B.submit net ~user:admin ~contract:"init" ~args:[]);
  B.settle net;
  net

let run_workload net =
  let alice = B.register_user net "org1/alice" in
  let ids =
    List.init 12 (fun i ->
        B.submit net ~user:alice ~contract:"put"
          ~args:[ Value.Int (i mod 9); Value.Int i ])
  in
  B.settle net;
  List.map
    (fun id ->
      ( id,
        match B.status net id with
        | Some B.Committed -> "committed"
        | Some (B.Aborted r) -> "aborted:" ^ r
        | Some (B.Rejected r) -> "rejected:" ^ r
        | None -> "undecided" ))
    ids

let test_lifecycle_trace () =
  let net = init_net ~tracing:true () in
  let statuses = run_workload net in
  Alcotest.(check bool) "some tx committed" true
    (List.exists (fun (_, s) -> s = "committed") statuses);
  let evs = B.trace_events net in
  Alcotest.(check bool) "events recorded" true (evs <> []);
  let db_nodes = [ "db-org1"; "db-org2"; "db-org3" ] in
  let has node kind name =
    List.exists
      (fun e -> e.Trace.node = node && e.Trace.kind = kind && e.Trace.name = name)
      evs
  in
  (* submit → order → execute → validate → commit, on every node *)
  List.iter
    (fun node ->
      Alcotest.(check bool) (node ^ " execute span") true
        (has node Trace.Complete "execute");
      Alcotest.(check bool) (node ^ " commit span") true
        (has node Trace.Complete "commit");
      Alcotest.(check bool) (node ^ " validate instant") true
        (has node Trace.Instant "validate"))
    db_nodes;
  Alcotest.(check bool) "order span" true
    (List.exists
       (fun e ->
         e.Trace.kind = Trace.Complete && e.Trace.cat = "order"
         && e.Trace.dur >= 0.)
       evs);
  (* the client lifecycle opens and closes with the same transaction id *)
  let begins =
    List.filter_map
      (fun e -> if e.Trace.kind = Trace.Async_begin then Some e.Trace.id else None)
      evs
  in
  Alcotest.(check bool) "async begin recorded" true (begins <> []);
  List.iter
    (fun id ->
      Alcotest.(check bool) ("async end for " ^ id) true
        (List.exists
           (fun e -> e.Trace.kind = Trace.Async_end && e.Trace.id = id)
           evs))
    begins;
  (* per-operator executor stats ride along on the exec track *)
  Alcotest.(check bool) "exec stats instants" true
    (List.exists (fun e -> e.Trace.track = "exec" && e.Trace.name = "contract") evs);
  check_valid_json "end-to-end chrome export" (Export.chrome_string evs)

let test_tracing_is_neutral () =
  let run tracing =
    let net = init_net ~tracing ~flow:Node_core.Execute_order () in
    let statuses = run_workload net in
    let height = Node_core.height (Peer.core (B.peer net 0)) in
    let s = B.summary net ~duration_s:1.0 in
    (statuses, height, s.Metrics.committed, s.Metrics.aborted)
  in
  let off = run false and on = run true in
  let _, _, committed, _ = off in
  Alcotest.(check bool) "workload nontrivial" true (committed > 0);
  Alcotest.(check bool)
    "identical statuses, heights and summary with tracing on vs off" true
    (off = on)

let test_chaos_trace_deterministic () =
  let spec =
    {
      Chaos.default_spec with
      Chaos.seed = 11;
      rate = 80.;
      duration = 0.8;
      crashes = 1;
      partitions = 0;
      tracing = true;
    }
  in
  let r1 = Chaos.run spec and r2 = Chaos.run spec in
  Alcotest.(check bool) "converged" true r1.Chaos.converged;
  Alcotest.(check (list string)) "no decision mismatches" []
    r1.Chaos.decision_mismatches;
  Alcotest.(check string) "fingerprints equal" r1.Chaos.fingerprint
    r2.Chaos.fingerprint;
  Alcotest.(check bool) "trace non-empty" true (r1.Chaos.trace_jsonl <> "");
  Alcotest.(check bool) "JSONL byte-identical across runs" true
    (String.equal r1.Chaos.trace_jsonl r2.Chaos.trace_jsonl)

let causal_decision_names = [ "validate"; "commit"; "abort"; "reject" ]

(* Shared connectivity check: every per-transaction decision instant must be
   reachable from its transaction's submit span (the follows edge lands on an
   Async_begin that opened [tx/<id>]) and hang off a span chain rooted at the
   ordering service ([order/<h>]). *)
let check_connected ~fail evs =
  let spans = Hashtbl.create 256 in
  List.iter
    (fun e -> if e.Trace.span <> "" then Hashtbl.replace spans e.Trace.span e)
    evs;
  let submit_spans = Hashtbl.create 256 in
  List.iter
    (fun e ->
      if e.Trace.kind = Trace.Async_begin then
        Hashtbl.replace submit_spans e.Trace.span ())
    evs;
  let rec root_of ctx depth =
    if depth > 8 then ctx
    else
      match Hashtbl.find_opt spans ctx with
      | Some e when e.Trace.parent <> "" -> root_of e.Trace.parent (depth + 1)
      | _ -> ctx
  in
  let checked = ref 0 in
  List.iter
    (fun e ->
      if
        e.Trace.track = "txn"
        && e.Trace.kind = Trace.Instant
        && List.mem e.Trace.name causal_decision_names
      then begin
        incr checked;
        if not (starts_with ~prefix:"tx/" e.Trace.follows) then
          fail
            (Printf.sprintf "%s on %s has no tx/ follows edge (got %S)"
               e.Trace.name e.Trace.node e.Trace.follows);
        if not (Hashtbl.mem submit_spans e.Trace.follows) then
          fail
            (Printf.sprintf "%s on %s follows %S, but no submit span opened it"
               e.Trace.name e.Trace.node e.Trace.follows);
        if not (Hashtbl.mem spans e.Trace.parent) then
          fail
            (Printf.sprintf "%s on %s has unresolved parent %S" e.Trace.name
               e.Trace.node e.Trace.parent);
        let root = root_of e.Trace.parent 0 in
        if not (starts_with ~prefix:"order/" root) then
          fail
            (Printf.sprintf "%s on %s roots at %S, not an order span"
               e.Trace.name e.Trace.node root)
      end)
    evs;
  !checked

let test_causal_cross_node () =
  let net = init_net ~tracing:true () in
  ignore (run_workload net);
  let evs = B.trace_events net in
  let proj node = Export.causal_jsonl ~node evs in
  let reference = proj "db-org1" in
  Alcotest.(check bool) "causal projection non-empty" true (reference <> "");
  List.iter
    (fun node ->
      Alcotest.(check string)
        (node ^ " causal projection byte-identical")
        reference (proj node))
    [ "db-org2"; "db-org3" ];
  let checked = check_connected ~fail:Alcotest.fail evs in
  Alcotest.(check bool) "decision instants were checked" true (checked > 0)

let prop_causal_traces_agree_under_chaos =
  (* Satellite 3: under a seeded fault schedule (loss, duplication, a
     healing partition, a crash/restart cycle), every node's causal
     projection — spans with parent/follows edges, node-local data
     stripped — is byte-identical, and the trace stays *connected*: each
     validate/commit/abort instant reaches its submit span and an order
     root. Replay after recovery re-emits spans; the projection dedupes. *)
  QCheck.Test.make
    ~name:"chaos: causal trace identical across nodes and connected" ~count:5
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999))
    (fun seed ->
      let spec =
        {
          Chaos.default_spec with
          Chaos.seed;
          rate = 90.;
          duration = 0.7;
          block_size = 6;
          drop = 0.02 +. (0.005 *. float_of_int (seed mod 5));
          duplicate = float_of_int (seed mod 3) /. 100.;
          crashes = seed mod 2;
          partitions = (seed + 1) mod 2;
          tracing = true;
        }
      in
      let r = Chaos.run spec in
      if not r.Chaos.converged then
        QCheck.Test.fail_reportf "seed %d diverged: %a" seed Chaos.pp_report r;
      let evs = r.Chaos.trace_events in
      if evs = [] then QCheck.Test.fail_reportf "seed %d: no trace events" seed;
      let proj node = Export.causal_jsonl ~node evs in
      let reference = proj "db-org1" in
      if reference = "" then
        QCheck.Test.fail_reportf "seed %d: empty causal projection" seed;
      List.iter
        (fun node ->
          let got = proj node in
          if got <> reference then
            QCheck.Test.fail_reportf
              "seed %d: causal projection differs between db-org1 and %s" seed
              node)
        [ "db-org2"; "db-org3" ];
      let checked =
        check_connected
          ~fail:(fun msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)
          evs
      in
      if checked = 0 then
        QCheck.Test.fail_reportf "seed %d: no decision instants traced" seed;
      true)

(* --- critical path: levelization and wave schedule (ISSUE 8) -------------- *)

let test_critical_path_diamond () =
  (* 0 -> {1, 2} -> 3: two parallel middles between a source and a sink *)
  let input =
    {
      Critical_path.n = 4;
      weights = [| 1.; 1.; 1.; 1. |];
      edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ];
    }
  in
  let r = Critical_path.analyze input in
  Alcotest.(check (float 1e-9)) "serial" 4. r.Critical_path.serial_s;
  Alcotest.(check (float 1e-9)) "critical" 3. r.Critical_path.critical_s;
  Alcotest.(check int) "waves" 3 r.Critical_path.waves;
  Alcotest.(check (array int)) "schedule" [| 0; 1; 1; 2 |]
    (Critical_path.schedule input)

let test_critical_path_levelization_all_preds () =
  (* depth must be 1 + max over ALL predecessors, not just the heaviest:
     0 has weight 0, so the weighted longest path to 1 and 2 ignores it,
     but the wave schedule still must place them after 0 *)
  let input =
    {
      Critical_path.n = 3;
      weights = [| 0.; 1.; 1. |];
      edges = [ (0, 1); (0, 2) ];
    }
  in
  let r = Critical_path.analyze input in
  Alcotest.(check int) "waves counts the edge" 2 r.Critical_path.waves;
  Alcotest.(check (array int)) "fan-out schedule" [| 0; 1; 1 |]
    (Critical_path.schedule input);
  (* independent positions all land in wave 0 *)
  Alcotest.(check (array int)) "no edges -> one wave" [| 0; 0; 0 |]
    (Critical_path.schedule
       { Critical_path.n = 3; weights = [| 1.; 1.; 1. |]; edges = [] })

let suites =
  [
    ( "obs.trace",
      [
        Alcotest.test_case "null tracer is a no-op" `Quick test_null_tracer;
        Alcotest.test_case "event ordering" `Quick test_event_ordering;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "jsonl" `Quick test_jsonl_export;
        Alcotest.test_case "chrome trace_event" `Quick test_chrome_export;
        Alcotest.test_case "causal projection" `Quick test_causal_export;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "percentile interpolation at small n" `Quick
          test_percentile_interpolation;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "kinds" `Quick test_registry_kinds;
        Alcotest.test_case "views and aggregation" `Quick test_registry_views;
      ] );
    ( "obs.abort-class",
      [ Alcotest.test_case "taxonomy mapping" `Quick test_abort_classes ] );
    ( "obs.critical-path",
      [
        Alcotest.test_case "diamond DAG" `Quick test_critical_path_diamond;
        Alcotest.test_case "levelization over all predecessors" `Quick
          test_critical_path_levelization_all_preds;
      ] );
    ( "obs.e2e",
      [
        Alcotest.test_case "lifecycle spans on every node" `Quick
          test_lifecycle_trace;
        Alcotest.test_case "tracing changes nothing" `Quick
          test_tracing_is_neutral;
        Alcotest.test_case "chaos trace byte-identical" `Quick
          test_chaos_trace_deterministic;
        Alcotest.test_case "causal projection identical across nodes" `Quick
          test_causal_cross_node;
        QCheck_alcotest.to_alcotest prop_causal_traces_agree_under_chaos;
      ] );
  ]
