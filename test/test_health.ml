(** Health-plane suite (ISSUE 9, DESIGN.md §15).

    Three layers: unit tests for the {!Brdb_obs.Registry.Window}/[Ewma]
    helpers and for every {!Brdb_obs.Health} detector rule against
    synthetic samples; a qcheck false-positive-freedom property
    (fault-free chaos runs stay silent across seeds); and the fault→alert
    coverage matrix — every {!Brdb_core.Chaos.fault} class, injected under
    a tuned spec, must raise a matching alert within bounded sim-time and
    blocks, with the alert stream byte-identical across runs of a seed and
    across the [sys.alerts] views of every node. *)

module H = Brdb_obs.Health
module Reg = Brdb_obs.Registry
module B = Brdb_core.Blockchain_db
module Chaos = Brdb_core.Chaos
module Service = Brdb_consensus.Service
module Msg = Brdb_consensus.Msg
module Peer = Brdb_node.Peer
module Node_core = Brdb_node.Node_core
module Block = Brdb_ledger.Block
module Identity = Brdb_crypto.Identity
module Value = Brdb_storage.Value
module Exec = Brdb_engine.Exec

(* --- Window / Ewma helpers (satellite: edge cases) ----------------------- *)

let test_window_edges () =
  let w = Reg.Window.create ~span:1.0 in
  (* empty *)
  Alcotest.(check int) "empty count" 0 (Reg.Window.count w ~now:0.);
  Alcotest.(check (float 0.)) "empty sum" 0. (Reg.Window.sum w ~now:0.);
  Alcotest.(check (float 0.)) "empty mean" 0. (Reg.Window.mean w ~now:0.);
  (* single sample *)
  Reg.Window.add w ~now:0.5 3.;
  Alcotest.(check int) "single count" 1 (Reg.Window.count w ~now:0.5);
  Alcotest.(check (float 1e-9)) "single sum" 3. (Reg.Window.sum w ~now:0.5);
  Alcotest.(check (float 1e-9)) "single mean" 3. (Reg.Window.mean w ~now:0.5);
  (* second sample, then age the first one out *)
  Reg.Window.add w ~now:1.2 5.;
  Alcotest.(check (float 1e-9)) "both in window" 8. (Reg.Window.sum w ~now:1.2);
  Alcotest.(check (float 1e-9)) "older sample pruned" 5.
    (Reg.Window.sum w ~now:1.6);
  Alcotest.(check int) "fully drained" 0 (Reg.Window.count w ~now:9.);
  Alcotest.check_raises "non-positive span rejected"
    (Invalid_argument "Registry.Window.create: span must be > 0") (fun () ->
      ignore (Reg.Window.create ~span:0.))

let test_window_shorter_than_tick () =
  (* a window shorter than the sampling interval sees at most the latest
     sample — each tick starts from a drained window *)
  let w = Reg.Window.create ~span:0.1 in
  Reg.Window.add w ~now:1.0 1.;
  Alcotest.(check int) "tick 1 sees its own sample" 1
    (Reg.Window.count w ~now:1.0);
  Alcotest.(check int) "next tick sees nothing" 0 (Reg.Window.count w ~now:2.0);
  Reg.Window.add w ~now:2.0 1.;
  Alcotest.(check int) "tick 2 sees only its own sample" 1
    (Reg.Window.count w ~now:2.0)

let test_ewma_edges () =
  let e = Reg.Ewma.create ~alpha:0.5 in
  Alcotest.(check (float 0.)) "no samples -> 0" 0. (Reg.Ewma.value e);
  Alcotest.(check int) "no samples -> count 0" 0 (Reg.Ewma.count e);
  Reg.Ewma.add e 10.;
  Alcotest.(check (float 1e-9)) "first sample seeds exactly" 10.
    (Reg.Ewma.value e);
  Reg.Ewma.add e 20.;
  Alcotest.(check (float 1e-9)) "second moves by alpha" 15. (Reg.Ewma.value e);
  Alcotest.(check int) "count tracks samples" 2 (Reg.Ewma.count e);
  List.iter
    (fun alpha ->
      Alcotest.check_raises
        (Printf.sprintf "alpha %.1f rejected" alpha)
        (Invalid_argument "Registry.Ewma.create: alpha must be in (0, 1]")
        (fun () -> ignore (Reg.Ewma.create ~alpha)))
    [ 0.; -0.5; 1.5 ]

(* --- detector rules against synthetic samples ---------------------------- *)

let node ?(height = 0) ?(crashed = false) ?(rejected = 0) ?(corrupt = 0)
    ?(fails = 0) ?(div = 0) name =
  {
    H.ns_node = name;
    ns_height = height;
    ns_crashed = crashed;
    ns_blocks_rejected = rejected;
    ns_chunks_corrupted = corrupt;
    ns_install_failures = fails;
    ns_divergence_flags = div;
  }

let sample ?(nodes = []) ?(cut = 0) ?(pending = 0) ?(decided = 0)
    ?(aborted = 0) ?(elections = 0) ?(view_changes = 0) ?(agree = true)
    ?(auth_rejected = 0) time =
  {
    H.s_time = time;
    s_nodes = nodes;
    s_blocks_cut = cut;
    s_pending = pending;
    s_decided = decided;
    s_aborted = aborted;
    s_elections = elections;
    s_view_changes = view_changes;
    s_digests_agree = agree;
    s_auth_rejected = auth_rejected;
  }

let transitions alerts =
  List.map
    (fun (a : H.alert) ->
      (H.detector_id a.H.al_detector, H.transition_name a.H.al_transition))
    alerts

let test_first_sample_never_fires () =
  (* even a blatantly unhealthy first sample only seeds baselines *)
  let h = H.create () in
  let s =
    sample 0.1 ~agree:false ~pending:9 ~elections:5 ~view_changes:5
      ~nodes:[ node "a" ~rejected:9 ~corrupt:9 ~fails:2; node "b" ~height:99 ]
  in
  Alcotest.(check (list (pair string string))) "first sample silent" []
    (transitions (H.observe h s));
  Alcotest.(check int) "log empty" 0 (H.alert_count h)

let test_ordering_stall_fires_and_clears () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0));
  (* a cut arrives, then the queue sits non-empty with the counter flat *)
  let fired = ref [] in
  for i = 1 to 15 do
    let t = 0.1 *. float_of_int i in
    fired := !fired @ transitions (H.observe h (sample t ~cut:1 ~pending:3))
  done;
  Alcotest.(check (list (pair string string)))
    "one fire once the stall exceeds stall_s"
    [ ("ordering_stall", "fire") ]
    !fired;
  (* the next cut clears it *)
  Alcotest.(check (list (pair string string)))
    "cut progress clears"
    [ ("ordering_stall", "clear") ]
    (transitions (H.observe h (sample 1.6 ~cut:2 ~pending:3)))

let test_ordering_stall_ignores_idle_gaps () =
  (* regression: the stall clock must not accumulate age across an idle
     (empty-queue) gap — work arriving after 2 s of idleness has waited
     zero seconds, not two *)
  let h = H.create () in
  ignore (H.observe h (sample 0.0 ~cut:1));
  for i = 1 to 20 do
    let t = 0.1 *. float_of_int i in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "idle tick %.1f silent" t)
      []
      (transitions (H.observe h (sample t ~cut:1 ~pending:0)))
  done;
  (* fresh work at t=2.1: not stalled until it has waited stall_s *)
  Alcotest.(check (list (pair string string))) "fresh work not yet a stall" []
    (transitions (H.observe h (sample 2.1 ~cut:1 ~pending:5)));
  Alcotest.(check (list (pair string string))) "still within stall_s" []
    (transitions (H.observe h (sample 3.0 ~cut:1 ~pending:5)));
  Alcotest.(check (list (pair string string)))
    "fires only after waiting stall_s from arrival"
    [ ("ordering_stall", "fire") ]
    (transitions (H.observe h (sample 3.3 ~cut:1 ~pending:5)))

let test_view_change_storm () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0));
  (* the startup Raft election is expected and ignored *)
  Alcotest.(check (list (pair string string))) "first election ignored" []
    (transitions (H.observe h (sample 0.1 ~elections:1)));
  (* a second election is churn *)
  Alcotest.(check (list (pair string string)))
    "re-election fires"
    [ ("view_change_storm", "fire") ]
    (transitions (H.observe h (sample 0.2 ~elections:2)));
  (* quiet until the churn window drains *)
  Alcotest.(check (list (pair string string)))
    "clears once the window drains"
    [ ("view_change_storm", "clear") ]
    (transitions (H.observe h (sample 2.5 ~elections:2)));
  (* BFT view changes count without the startup allowance *)
  let h2 = H.create () in
  ignore (H.observe h2 (sample 0.0));
  Alcotest.(check (list (pair string string)))
    "a view change fires directly"
    [ ("view_change_storm", "fire") ]
    (transitions (H.observe h2 (sample 0.1 ~view_changes:1)))

let test_abort_spike () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0));
  (* 10 decisions, all aborted: EWMA seeds at 1.0 >= ratio, and the
     decided-count gate (>= 8 in window) is satisfied *)
  Alcotest.(check (list (pair string string)))
    "abort wave fires"
    [ ("abort_spike", "fire") ]
    (transitions (H.observe h (sample 0.1 ~decided:10 ~aborted:10)));
  (* commit-only traffic decays the EWMA (factor 0.7/tick); hysteresis
     clears at ratio/2 = 0.25, i.e. after the 5th commit-only wave *)
  let fired = ref [] in
  for i = 1 to 5 do
    let t = 0.1 +. (0.1 *. float_of_int i) in
    fired :=
      !fired
      @ transitions (H.observe h (sample t ~decided:(10 + (10 * i)) ~aborted:10))
  done;
  Alcotest.(check (list (pair string string)))
    "clears after sustained commits"
    [ ("abort_spike", "clear") ]
    !fired;
  (* too few decisions never fire, whatever the fraction *)
  let h2 = H.create () in
  ignore (H.observe h2 (sample 0.0));
  Alcotest.(check (list (pair string string)))
    "below the decided gate stays silent" []
    (transitions (H.observe h2 (sample 0.1 ~decided:3 ~aborted:3)))

let test_replication_lag () =
  let h = H.create () in
  let nodes_at b_height = [ node "a" ~height:20; node "b" ~height:b_height ] in
  ignore (H.observe h (sample 0.0 ~nodes:(nodes_at 20)));
  (* a gap above lag_blocks must be sustained for lag_sustain ticks *)
  Alcotest.(check (list (pair string string))) "tick 1 of the streak" []
    (transitions (H.observe h (sample 0.1 ~nodes:(nodes_at 10))));
  Alcotest.(check (list (pair string string))) "tick 2 of the streak" []
    (transitions (H.observe h (sample 0.2 ~nodes:(nodes_at 10))));
  let fired = H.observe h (sample 0.3 ~nodes:(nodes_at 10)) in
  Alcotest.(check (list (pair string string)))
    "sustained gap fires"
    [ ("replication_lag", "fire") ]
    (transitions fired);
  Alcotest.(check string) "names the lagging node" "b"
    (List.hd fired).H.al_subject;
  (* hysteresis: gap must halve to clear *)
  Alcotest.(check (list (pair string string))) "gap of 3 still firing" []
    (transitions (H.observe h (sample 0.4 ~nodes:(nodes_at 17))));
  Alcotest.(check (list (pair string string)))
    "caught up clears"
    [ ("replication_lag", "clear") ]
    (transitions (H.observe h (sample 0.5 ~nodes:(nodes_at 19))))

let test_snapshot_failure () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0 ~nodes:[ node "a" ]));
  (* a corrupted-chunk streak fires once it reaches corrupt_streak *)
  Alcotest.(check (list (pair string string))) "two corrupt chunks silent" []
    (transitions (H.observe h (sample 0.1 ~nodes:[ node "a" ~corrupt:2 ])));
  Alcotest.(check (list (pair string string)))
    "streak fires"
    [ ("snapshot_failure", "fire") ]
    (transitions (H.observe h (sample 0.2 ~nodes:[ node "a" ~corrupt:3 ])));
  Alcotest.(check (list (pair string string)))
    "clears once the window drains"
    [ ("snapshot_failure", "clear") ]
    (transitions (H.observe h (sample 2.5 ~nodes:[ node "a" ~corrupt:3 ])));
  (* a single failed install outweighs the chunk streak *)
  let h2 = H.create () in
  ignore (H.observe h2 (sample 0.0 ~nodes:[ node "a" ]));
  Alcotest.(check (list (pair string string)))
    "one failed install fires"
    [ ("snapshot_failure", "fire") ]
    (transitions (H.observe h2 (sample 0.1 ~nodes:[ node "a" ~fails:1 ])))

let test_auth_rejection_burst () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0 ~nodes:[ node "a" ]));
  let fired = H.observe h (sample 0.1 ~nodes:[ node "a" ~rejected:1 ]) in
  Alcotest.(check (list (pair string string)))
    "any rejected block fires"
    [ ("auth_rejection_burst", "fire") ]
    (transitions fired);
  Alcotest.(check bool) "critical severity" true
    ((List.hd fired).H.al_severity = H.Critical);
  Alcotest.(check (list (pair string string)))
    "clears once the window drains"
    [ ("auth_rejection_burst", "clear") ]
    (transitions (H.observe h (sample 2.5 ~nodes:[ node "a" ~rejected:1 ])))

let test_divergence_warning () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0));
  Alcotest.(check (list (pair string string)))
    "digest disagreement fires"
    [ ("divergence_warning", "fire") ]
    (transitions (H.observe h (sample 0.1 ~agree:false)));
  Alcotest.(check (list (pair string string)))
    "agreement clears"
    [ ("divergence_warning", "clear") ]
    (transitions (H.observe h (sample 0.2 ~agree:true)));
  (* a node's own checkpoint monitor flag also fires, and holds for the
     evidence window even after the flag count stops moving *)
  let h2 = H.create () in
  ignore (H.observe h2 (sample 0.0 ~nodes:[ node "a" ]));
  Alcotest.(check (list (pair string string)))
    "monitor flag fires"
    [ ("divergence_warning", "fire") ]
    (transitions (H.observe h2 (sample 0.1 ~nodes:[ node "a" ~div:1 ])));
  Alcotest.(check (list (pair string string))) "held inside the window" []
    (transitions (H.observe h2 (sample 0.3 ~nodes:[ node "a" ~div:1 ])))

let test_bookkeeping () =
  let h = H.create () in
  ignore (H.observe h (sample 0.0 ~nodes:[ node "a" ]));
  ignore (H.observe h (sample 0.1 ~agree:false ~nodes:[ node "a" ~rejected:1 ]));
  Alcotest.(check int) "two transitions logged" 2 (H.alert_count h);
  Alcotest.(check int) "divergence fires" 1 (H.fires h H.Divergence_warning);
  Alcotest.(check int) "auth fires" 1 (H.fires h H.Auth_rejection_burst);
  Alcotest.(check (list (pair string string)))
    "firing cells sorted"
    [ ("auth_rejection_burst", "a"); ("divergence_warning", "cluster") ]
    (List.map (fun (d, s) -> (H.detector_id d, s)) (H.firing h));
  let sm =
    List.find (fun s -> s.H.sm_detector = H.Divergence_warning) (H.summaries h)
  in
  Alcotest.(check int) "summary firing" 1 sm.H.sm_firing;
  Alcotest.(check int) "summary fires" 1 sm.H.sm_fires;
  Alcotest.(check (float 1e-9)) "summary last transition" 0.1 sm.H.sm_last_time;
  Alcotest.(check int) "stream lines = transitions" 2
    (List.length (String.split_on_char '\n' (H.stream h)));
  (* detector ids round-trip *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (H.detector_id d ^ " round-trips")
        true
        (H.detector_of_id (H.detector_id d) = Some d))
    H.all_detectors

(* --- false-positive freedom (qcheck) ------------------------------------- *)

let clean_spec seed =
  {
    Chaos.default_spec with
    Chaos.seed;
    rate = 100.;
    duration = 0.5;
    drop = 0.;
    duplicate = 0.;
    snap_corrupt = 0.;
    crashes = 0;
    partitions = 0;
    orderer_crashes = 0;
    block_tamper = 0.;
  }

let prop_clean_runs_silent =
  QCheck.Test.make ~count:20 ~name:"fault-free chaos runs raise zero alerts"
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 10_000))
    (fun seed ->
      let r = Chaos.run (clean_spec seed) in
      if not r.Chaos.converged then
        QCheck.Test.fail_reportf "seed %d did not converge" seed;
      if r.Chaos.alerts <> [] then
        QCheck.Test.fail_reportf "seed %d raised alerts:@.%s" seed
          r.Chaos.alert_stream;
      Chaos.faults_of_spec (clean_spec seed) = [])

(* --- fault -> alert coverage matrix -------------------------------------- *)

(* Bounds far above the measured latencies (<= 0.8 s / 15 blocks) but
   tight enough that a detector drifting towards uselessness fails. *)
let check_covered name (r : Chaos.report) =
  if not r.Chaos.converged then
    Alcotest.failf "%s did not converge: %a" name Chaos.pp_report r;
  Alcotest.(check (list string))
    (name ^ ": every injected fault class detected")
    []
    (List.map Chaos.fault_id r.Chaos.uncovered_faults);
  List.iter
    (fun (d : Chaos.detection) ->
      match Chaos.detection_latency d with
      | None -> Alcotest.failf "%s: %s undetected" name (Chaos.fault_id d.Chaos.det_fault)
      | Some (secs, blocks) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s detected in %.3fs/%d blocks (bound 3s/25)"
               name
               (Chaos.fault_id d.Chaos.det_fault)
               secs blocks)
            true
            (secs <= 3.0 && blocks <= 25))
    r.Chaos.fault_coverage

let fired_detector (r : Chaos.report) d =
  List.mem_assoc (H.detector_id d) r.Chaos.alerts_fired

let test_coverage_partition () =
  let r =
    Chaos.run
      {
        Chaos.default_spec with
        Chaos.seed = 2;
        duration = 2.0;
        drop = 0.;
        duplicate = 0.;
        crashes = 0;
        partitions = 1;
      }
  in
  check_covered "partition" r;
  Alcotest.(check bool) "partition -> replication_lag" true
    (fired_detector r H.Replication_lag)

let test_coverage_crash () =
  let r =
    Chaos.run
      {
        Chaos.default_spec with
        Chaos.seed = 3;
        duration = 2.0;
        drop = 0.;
        duplicate = 0.;
        crashes = 1;
        partitions = 0;
      }
  in
  check_covered "crash" r;
  Alcotest.(check bool) "crash -> replication_lag" true
    (fired_detector r H.Replication_lag)

let test_coverage_orderer_crash_raft () =
  let r =
    Chaos.run
      {
        Chaos.default_spec with
        Chaos.seed = 3;
        ordering = Service.Raft;
        n_orderers = 3;
        orderer_crashes = 1;
        rate = 60.;
        duration = 1.5;
        drop = 0.;
        duplicate = 0.;
        crashes = 0;
        partitions = 0;
      }
  in
  check_covered "raft leader crash" r;
  Alcotest.(check bool) "leader crash -> view_change_storm" true
    (fired_detector r H.View_change_storm)

let test_coverage_orderer_crash_bft () =
  let r =
    Chaos.run
      {
        Chaos.default_spec with
        Chaos.seed = 11;
        ordering = Service.Bft;
        n_orderers = 4;
        orderer_crashes = 1;
        rate = 60.;
        duration = 1.5;
        drop = 0.;
        duplicate = 0.;
        crashes = 0;
        partitions = 0;
      }
  in
  check_covered "bft primary crash" r;
  Alcotest.(check bool) "primary crash -> view_change_storm" true
    (fired_detector r H.View_change_storm)

let test_coverage_snapshot_corruption () =
  let r =
    Chaos.run
      {
        Chaos.default_spec with
        Chaos.seed = 5;
        duration = 2.0;
        drop = 0.05;
        crashes = 2;
        partitions = 0;
        snap_corrupt = 0.6;
        snapshot_threshold = 2;
      }
  in
  check_covered "snapshot corruption" r;
  Alcotest.(check bool) "corrupt chunks -> snapshot_failure" true
    (fired_detector r H.Snapshot_failure)

let tamper_spec =
  {
    Chaos.default_spec with
    Chaos.seed = 7;
    block_tamper = 1.0;
    drop = 0.;
    duplicate = 0.;
    crashes = 0;
    partitions = 0;
  }

let test_coverage_tamper_and_determinism () =
  (* one spec doubles as the tamper coverage row and the byte-identity
     property: the alert stream is a pure function of the spec *)
  let a = Chaos.run tamper_spec in
  check_covered "block tamper" a;
  Alcotest.(check bool) "tamper -> auth_rejection_burst" true
    (fired_detector a H.Auth_rejection_burst);
  Alcotest.(check bool) "stream non-empty" true (a.Chaos.alert_stream <> "");
  let b = Chaos.run tamper_spec in
  Alcotest.(check string) "alert stream byte-identical across runs"
    a.Chaos.alert_stream b.Chaos.alert_stream;
  Alcotest.(check string) "replicated state byte-identical too"
    a.Chaos.fingerprint b.Chaos.fingerprint

(* --- sys.alerts / sys.detectors across nodes ----------------------------- *)

let query_ok db ?node sql =
  match B.query db ?node sql with
  | Ok rs -> rs
  | Error e -> Alcotest.failf "%s failed: %s" sql e

let render (rs : Exec.result_set) =
  String.concat "," rs.Exec.columns
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (fun row ->
           String.concat "|" (Array.to_list (Array.map Value.encode row)))
         rs.Exec.rows)

let test_sys_alerts_identical_across_nodes () =
  (* an equivocating block (validly signed sibling at a known height)
     must light up auth_rejection_burst, and every node's sys.alerts /
     sys.detectors view must serve byte-identical rows — all nodes query
     the one shared engine *)
  let db = B.create { (B.default_config ()) with B.block_size = 2; seed = 23 } in
  B.install_contract db ~name:"setup"
    (Brdb_contracts.Registry.Native
       (fun ctx ->
         ignore
           (Brdb_contracts.Api.execute ctx
              "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")));
  let admin = B.admin db "org1" in
  ignore (B.submit db ~user:admin ~contract:"setup" ~args:[]);
  B.settle db;
  Alcotest.(check int) "no alerts before the fault" 0
    (List.length (B.alerts db));
  let victim = B.peer db 0 in
  let evil =
    Block.sign
      (Block.create ~height:1 ~txs:[] ~metadata:"equivocation"
         ~prev_hash:Block.genesis_hash)
      (Identity.create "orderer/orderer-1")
  in
  ignore
    (Msg.Net.send (B.net db) ~src:"orderer-1" ~dst:(Peer.name victim)
       ~size_bytes:(Msg.size (Msg.Block_deliver evil))
       (Msg.Block_deliver evil));
  B.run db ~seconds:1.0;
  let alerts = B.alerts db in
  Alcotest.(check bool) "equivocation raised an alert" true (alerts <> []);
  Alcotest.(check bool) "it is auth_rejection_burst on the victim" true
    (List.exists
       (fun (a : H.alert) ->
         a.H.al_detector = H.Auth_rejection_burst
         && a.H.al_transition = H.Fire
         && String.equal a.H.al_subject (Peer.name victim))
       alerts);
  let sql =
    "SELECT seq, ts, height, transition, detector, severity, subject, \
     evidence FROM sys.alerts"
  in
  let reference = render (query_ok db ~node:0 sql) in
  Alcotest.(check bool) "sys.alerts has rows" true
    (String.contains reference '\n');
  List.iteri
    (fun i p ->
      Alcotest.(check string)
        (Peer.name p ^ " serves identical sys.alerts bytes")
        reference
        (render (query_ok db ~node:i sql)))
    (B.peers db);
  (* sys.detectors: one row per detector, the burst marked firing *)
  let detectors =
    query_ok db "SELECT detector, firing, fires FROM sys.detectors"
  in
  Alcotest.(check int) "one row per detector"
    (List.length H.all_detectors)
    (List.length detectors.Exec.rows);
  let burst_row =
    List.find
      (fun row -> row.(0) = Value.Text "auth_rejection_burst")
      detectors.Exec.rows
  in
  Alcotest.(check bool) "burst row shows a firing subject and a fire" true
    (burst_row.(1) = Value.Int 1 && burst_row.(2) = Value.Int 1)

let suites =
  [
    ( "health.window",
      [
        Alcotest.test_case "window edge cases" `Quick test_window_edges;
        Alcotest.test_case "window shorter than tick" `Quick
          test_window_shorter_than_tick;
        Alcotest.test_case "ewma edge cases" `Quick test_ewma_edges;
      ] );
    ( "health.detectors",
      [
        Alcotest.test_case "first sample never fires" `Quick
          test_first_sample_never_fires;
        Alcotest.test_case "ordering stall" `Quick
          test_ordering_stall_fires_and_clears;
        Alcotest.test_case "stall ignores idle gaps" `Quick
          test_ordering_stall_ignores_idle_gaps;
        Alcotest.test_case "view-change storm" `Quick test_view_change_storm;
        Alcotest.test_case "abort spike" `Quick test_abort_spike;
        Alcotest.test_case "replication lag" `Quick test_replication_lag;
        Alcotest.test_case "snapshot failure" `Quick test_snapshot_failure;
        Alcotest.test_case "auth rejection burst" `Quick
          test_auth_rejection_burst;
        Alcotest.test_case "divergence warning" `Quick test_divergence_warning;
        Alcotest.test_case "bookkeeping" `Quick test_bookkeeping;
      ] );
    ( "health.coverage",
      [
        QCheck_alcotest.to_alcotest prop_clean_runs_silent;
        Alcotest.test_case "partition -> replication_lag" `Quick
          test_coverage_partition;
        Alcotest.test_case "crash -> replication_lag" `Quick
          test_coverage_crash;
        Alcotest.test_case "raft leader crash -> storm" `Quick
          test_coverage_orderer_crash_raft;
        Alcotest.test_case "bft primary crash -> storm" `Quick
          test_coverage_orderer_crash_bft;
        Alcotest.test_case "snapshot corruption -> failure" `Quick
          test_coverage_snapshot_corruption;
        Alcotest.test_case "tamper -> burst, byte-identical" `Quick
          test_coverage_tamper_and_determinism;
      ] );
    ( "health.sysviews",
      [
        Alcotest.test_case "sys.alerts identical across nodes" `Quick
          test_sys_alerts_identical_across_nodes;
      ] );
  ]
