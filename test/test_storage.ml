open Brdb_storage
module Ast = Brdb_sql.Ast

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let col ?(pk = false) ?(nn = false) name ty =
  { Schema.name; ty; not_null = nn; primary_key = pk }

let sample_schema () =
  match
    Schema.create ~name:"items"
      ~columns:[ col ~pk:true "id" Ast.T_int; col "name" Ast.T_text; col "qty" Ast.T_int ]
  with
  | Ok s -> s
  | Error m -> Alcotest.fail m

(* --- values ------------------------------------------------------------ *)

let test_value_total_order () =
  let open Value in
  Alcotest.(check bool) "null first" true (compare_total Null (Int 0) < 0);
  Alcotest.(check bool) "bool < int" true (compare_total (Bool true) (Int 0) < 0);
  Alcotest.(check bool) "int ~ float" true (compare_total (Int 2) (Float 2.5) < 0);
  Alcotest.(check int) "int = float" 0 (compare_total (Int 2) (Float 2.0));
  Alcotest.(check bool) "num < text" true (compare_total (Int 99) (Text "a") < 0);
  Alcotest.(check bool) "text order" true (compare_total (Text "a") (Text "b") < 0)

let test_value_sql_compare () =
  let open Value in
  Alcotest.(check (option int)) "null" None (compare_sql Null (Int 1));
  Alcotest.(check (option int)) "mismatch" None (compare_sql (Int 1) (Text "1"));
  Alcotest.(check (option int)) "eq" (Some 0) (compare_sql (Int 3) (Float 3.0))

let test_value_conforms () =
  let open Value in
  Alcotest.(check bool) "null conforms" true (conforms Ast.T_int Null);
  Alcotest.(check bool) "int widens to float" true (conforms Ast.T_float (Int 1));
  Alcotest.(check bool) "text not int" false (conforms Ast.T_int (Text "x"))

let test_value_encode_distinct () =
  let open Value in
  let vs = [ Null; Int 1; Int 10; Float 1.0; Text "1"; Bool true; Bool false; Text "" ] in
  let encs = List.map encode vs in
  Alcotest.(check int) "all distinct" (List.length encs)
    (List.length (List.sort_uniq compare encs))

(* --- schema ------------------------------------------------------------ *)

let test_schema_validation () =
  let bad cols msg =
    match Schema.create ~name:"t" ~columns:cols with
    | Ok _ -> Alcotest.failf "expected failure: %s" msg
    | Error _ -> ()
  in
  bad [] "empty";
  bad [ col "a" Ast.T_int; col "a" Ast.T_text ] "duplicate";
  bad [ col ~pk:true "a" Ast.T_int; col ~pk:true "b" Ast.T_int ] "two pks";
  bad [ col "xmin" Ast.T_int ] "reserved";
  let s = sample_schema () in
  Alcotest.(check (option int)) "pk idx" (Some 0) s.Schema.pk_index;
  Alcotest.(check (option int)) "col idx" (Some 2) (Schema.column_index s "qty");
  Alcotest.(check (option int)) "missing" None (Schema.column_index s "nope")

let test_schema_check_row () =
  let s = sample_schema () in
  let ok row =
    match Schema.check_row s row with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  let bad row =
    match Schema.check_row s row with
    | Ok () -> Alcotest.fail "expected row rejection"
    | Error _ -> ()
  in
  ok [| Value.Int 1; Value.Text "x"; Value.Int 5 |];
  ok [| Value.Int 1; Value.Null; Value.Null |];
  bad [| Value.Int 1; Value.Text "x" |];
  (* wrong arity *)
  bad [| Value.Null; Value.Text "x"; Value.Int 5 |];
  (* pk null *)
  bad [| Value.Text "1"; Value.Text "x"; Value.Int 5 |] (* type mismatch *)

(* --- version visibility -------------------------------------------------- *)

let test_version_visibility () =
  let v = Version.make ~vid:0 ~xmin:7 [| Value.Int 1 |] in
  (* Uncommitted: invisible at any height, visible to its creator. *)
  Alcotest.(check bool) "uncommitted hidden" false (Version.visible_at v ~height:100);
  Alcotest.(check bool) "own insert visible" true (Version.visible_to v ~txid:7 ~height:0);
  Alcotest.(check bool) "other txn blind" false (Version.visible_to v ~txid:8 ~height:0);
  (* Commit at block 5. *)
  v.Version.creator_block <- 5;
  Alcotest.(check bool) "visible at 5" true (Version.visible_at v ~height:5);
  Alcotest.(check bool) "hidden at 4" false (Version.visible_at v ~height:4);
  (* Delete at block 9. *)
  v.Version.xmax <- 12;
  v.Version.deleter_block <- 9;
  Alcotest.(check bool) "visible at 8" true (Version.visible_at v ~height:8);
  Alcotest.(check bool) "hidden at 9" false (Version.visible_at v ~height:9);
  Alcotest.(check bool) "provenance sees dead" true (Version.visible_provenance v);
  (* Claimed rows are hidden from the claimant. *)
  let w = Version.make ~vid:1 ~xmin:1 [| Value.Int 2 |] in
  w.Version.creator_block <- 1;
  Version.claim w 33;
  Alcotest.(check bool) "claimant blind" false (Version.visible_to w ~txid:33 ~height:5);
  Alcotest.(check bool) "others still see" true (Version.visible_to w ~txid:34 ~height:5);
  Version.unclaim w 33;
  Alcotest.(check bool) "unclaimed again" true (Version.visible_to w ~txid:33 ~height:5)

let test_version_gap_detectors () =
  let v = Version.make ~vid:0 ~xmin:1 [| Value.Int 1 |] in
  v.Version.creator_block <- 5;
  Alcotest.(check bool) "committed after 3" true (Version.committed_after v ~height:3);
  Alcotest.(check bool) "not after 5" false (Version.committed_after v ~height:5);
  v.Version.deleter_block <- 8;
  Alcotest.(check bool) "deleted after 6" true (Version.deleted_after v ~height:6);
  Alcotest.(check bool) "not deleted after 8" false (Version.deleted_after v ~height:8);
  Alcotest.(check bool) "not alive before create" false (Version.deleted_after v ~height:4)

(* --- index --------------------------------------------------------------- *)

let collect_range idx ~lo ~hi =
  let acc = ref [] in
  Index.iter_range idx ~lo ~hi (fun vid -> acc := vid :: !acc);
  List.rev !acc

let test_index_ranges () =
  let idx = Index.create ~column:0 in
  List.iteri (fun vid k -> Index.add idx (Value.Int k) vid) [ 10; 20; 30; 40; 50 ];
  Alcotest.(check (list int)) "full" [ 0; 1; 2; 3; 4 ]
    (collect_range idx ~lo:Index.Unbounded ~hi:Index.Unbounded);
  Alcotest.(check (list int)) "closed" [ 1; 2 ]
    (collect_range idx ~lo:(Index.Incl (Value.Int 20)) ~hi:(Index.Incl (Value.Int 30)));
  Alcotest.(check (list int)) "open lo" [ 2 ]
    (collect_range idx ~lo:(Index.Excl (Value.Int 20)) ~hi:(Index.Incl (Value.Int 30)));
  Alcotest.(check (list int)) "open hi" [ 1 ]
    (collect_range idx ~lo:(Index.Incl (Value.Int 20)) ~hi:(Index.Excl (Value.Int 30)));
  Alcotest.(check (list int)) "empty" []
    (collect_range idx ~lo:(Index.Incl (Value.Int 31)) ~hi:(Index.Incl (Value.Int 39)));
  Alcotest.(check (list int)) "from above" [ 3; 4 ]
    (collect_range idx ~lo:(Index.Incl (Value.Int 35)) ~hi:Index.Unbounded)

let test_index_duplicates_and_remove () =
  let idx = Index.create ~column:0 in
  Index.add idx (Value.Int 1) 0;
  Index.add idx (Value.Int 1) 5;
  Index.add idx (Value.Int 1) 3;
  let acc = ref [] in
  Index.iter_eq idx (Value.Int 1) (fun v -> acc := v :: !acc);
  Alcotest.(check (list int)) "vid order" [ 0; 3; 5 ] (List.rev !acc);
  Index.remove idx (Value.Int 1) 3;
  Alcotest.(check int) "cardinal" 2 (Index.cardinal idx);
  Index.remove idx (Value.Int 1) 99 (* absent: no-op *);
  Alcotest.(check int) "cardinal same" 2 (Index.cardinal idx)

let prop_index_range_matches_filter =
  QCheck.Test.make ~name:"index range = naive filter" ~count:200
    QCheck.(pair (list small_int) (pair small_int small_int))
    (fun (keys, (a, b)) ->
      let lo = min a b and hi = max a b in
      let idx = Index.create ~column:0 in
      List.iteri (fun vid k -> Index.add idx (Value.Int k) vid) keys;
      let got =
        collect_range idx ~lo:(Index.Incl (Value.Int lo)) ~hi:(Index.Incl (Value.Int hi))
        |> List.sort compare
      in
      let expected =
        List.mapi (fun vid k -> (vid, k)) keys
        |> List.filter (fun (_, k) -> k >= lo && k <= hi)
        |> List.map fst |> List.sort compare
      in
      got = expected)

(* --- predicate ----------------------------------------------------------- *)

let test_predicate_matches () =
  let p_full = Predicate.Full_scan { table = "t" } in
  Alcotest.(check bool) "full matches" true (Predicate.matches p_full ~table:"t" [| Value.Int 1 |]);
  Alcotest.(check bool) "other table" false (Predicate.matches p_full ~table:"u" [| Value.Int 1 |]);
  let p =
    Predicate.Range
      { table = "t"; column = 1; lo = Index.Incl (Value.Int 10); hi = Index.Excl (Value.Int 20) }
  in
  let row v = [| Value.Text "x"; Value.Int v |] in
  Alcotest.(check bool) "in range" true (Predicate.matches p ~table:"t" (row 10));
  Alcotest.(check bool) "below" false (Predicate.matches p ~table:"t" (row 9));
  Alcotest.(check bool) "at open hi" false (Predicate.matches p ~table:"t" (row 20));
  Alcotest.(check bool) "inside" true (Predicate.matches p ~table:"t" (row 19))

(* --- table / catalog ------------------------------------------------------ *)

let test_table_pk_and_indexes () =
  let t = Table.create (sample_schema ()) in
  Alcotest.(check bool) "pk indexed" true (Table.has_index t ~column:0);
  Alcotest.(check (list int)) "unique pk" [ 0 ] (Table.unique_columns t);
  let v1 = Table.insert_version t ~xmin:1 [| Value.Int 1; Value.Text "a"; Value.Int 10 |] in
  let v2 = Table.insert_version t ~xmin:1 [| Value.Int 2; Value.Text "b"; Value.Int 20 |] in
  Alcotest.(check int) "vids" 0 v1.Version.vid;
  Alcotest.(check int) "vids" 1 v2.Version.vid;
  let found = ref [] in
  Table.pk_lookup t (Value.Int 2) (fun v -> found := v.Version.vid :: !found);
  Alcotest.(check (list int)) "pk lookup" [ 1 ] !found;
  (* Late index creation backfills existing versions. *)
  Table.add_index t ~column:2 ~unique:false;
  let got = ref [] in
  Table.iter_index t ~column:2 ~lo:(Index.Incl (Value.Int 15)) ~hi:Index.Unbounded
    (fun v -> got := v.Version.vid :: !got);
  Alcotest.(check (list int)) "backfilled" [ 1 ] !got

let test_table_prune () =
  let t = Table.create (sample_schema ()) in
  let v1 = Table.insert_version t ~xmin:1 [| Value.Int 1; Value.Text "a"; Value.Int 1 |] in
  let v2 = Table.insert_version t ~xmin:2 [| Value.Int 2; Value.Text "b"; Value.Int 2 |] in
  v1.Version.xmin_aborted <- true;
  let removed = Table.prune t ~keep:(fun v -> not v.Version.xmin_aborted) in
  Alcotest.(check int) "one removed" 1 removed;
  let seen = ref [] in
  Table.iter_versions t (fun v -> seen := v.Version.vid :: !seen);
  Alcotest.(check (list int)) "survivor" [ v2.Version.vid ] !seen;
  (* vids remain stable after pruning *)
  Alcotest.(check int) "stable vid" 1 (Table.get_version t 1).Version.vid

(* Vacuum coherence under churn: six "blocks" of committed inserts,
   updates (delete + reinsert) and aborted inserts, with a prune of dead
   history in the middle and at the end. After every step the visibility
   index must agree with the heap ([check_visibility]), and at the end the
   three access paths — visibility-index scan, secondary index, raw heap —
   must surface the same committed rows. *)
let test_prune_mid_workload_visibility () =
  let t = Table.create (sample_schema ()) in
  Table.add_index t ~column:2 ~unique:false;
  let check msg =
    match Table.check_visibility t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" msg e
  in
  let committed_insert ~height id qty =
    let v =
      Table.insert_version t ~xmin:(100 + height)
        [| Value.Int id; Value.Text (Printf.sprintf "n%d" id); Value.Int qty |]
    in
    v.Version.creator_block <- height;
    v
  in
  let last_block = 6 in
  for blk = 1 to last_block do
    for i = 0 to 2 do
      let id = (blk * 10) + i in
      ignore (committed_insert ~height:blk id (id mod 7))
    done;
    (* an insert whose transaction aborted: never visible, prunable *)
    let va =
      Table.insert_version t ~xmin:(1000 + blk)
        [| Value.Int ((blk * 10) + 5); Value.Text "gone"; Value.Int 99 |]
    in
    Table.mark_aborted t va;
    (* update a row from the previous block: retire + reinsert *)
    if blk > 1 then begin
      let id = (blk - 1) * 10 in
      let cur = ref None in
      Table.pk_lookup t (Value.Int id) (fun v ->
          if Version.visible_at v ~height:blk then cur := Some v);
      match !cur with
      | None -> Alcotest.failf "block %d: no live version of %d" blk id
      | Some v ->
          Table.mark_deleted t v ~xmax:(2000 + blk) ~height:blk;
          ignore (committed_insert ~height:blk id ((id + blk) mod 7))
    end;
    check (Printf.sprintf "after block %d" blk);
    if blk = 3 || blk = last_block then begin
      let h = blk - 1 in
      let removed =
        Table.prune t ~keep:(fun v ->
            (not v.Version.xmin_aborted) && v.Version.deleter_block > h)
      in
      Alcotest.(check bool)
        (Printf.sprintf "prune at block %d removed history" blk)
        true (removed > 0);
      check (Printf.sprintf "after prune at block %d" blk)
    end
  done;
  let collect iter =
    let acc = ref [] in
    iter (fun v ->
        if Version.visible_at v ~height:last_block then
          match v.Version.values.(0) with
          | Value.Int id -> acc := id :: !acc
          | _ -> Alcotest.fail "non-int pk");
    List.sort_uniq compare !acc
  in
  let via_live = collect (Table.iter_live t ~height:last_block) in
  let via_heap = collect (Table.iter_versions t) in
  let via_index =
    collect (fun f ->
        Table.iter_index t ~column:2 ~lo:Index.Unbounded ~hi:Index.Unbounded f)
  in
  Alcotest.(check (list int)) "live scan = heap scan" via_heap via_live;
  Alcotest.(check (list int)) "secondary index = heap scan" via_heap via_index;
  Alcotest.(check int) "all committed rows survive" (3 * last_block)
    (List.length via_heap);
  Alcotest.(check int) "live set matches"
    (3 * last_block) (Table.live_count t)

let test_catalog () =
  let c = Catalog.create () in
  Alcotest.(check bool) "ledger exists" true (Catalog.mem c Catalog.ledger_table);
  (match Catalog.create_table c (sample_schema ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Catalog.create_table c (sample_schema ()) with
  | Ok _ -> Alcotest.fail "duplicate table accepted"
  | Error _ -> ());
  Alcotest.(check (list string)) "names" [ "items"; "pgledger" ] (Catalog.table_names c);
  (match Catalog.drop_table c Catalog.ledger_table with
  | Ok () -> Alcotest.fail "dropped system table"
  | Error _ -> ());
  (match Catalog.drop_table c "items" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "gone" false (Catalog.mem c "items")

let suites =
  [
    ( "storage.value",
      [
        Alcotest.test_case "total order" `Quick test_value_total_order;
        Alcotest.test_case "sql compare" `Quick test_value_sql_compare;
        Alcotest.test_case "conforms" `Quick test_value_conforms;
        Alcotest.test_case "encode distinct" `Quick test_value_encode_distinct;
      ] );
    ( "storage.schema",
      [
        Alcotest.test_case "validation" `Quick test_schema_validation;
        Alcotest.test_case "check_row" `Quick test_schema_check_row;
      ] );
    ( "storage.version",
      [
        Alcotest.test_case "visibility" `Quick test_version_visibility;
        Alcotest.test_case "gap detectors" `Quick test_version_gap_detectors;
      ] );
    ( "storage.index",
      [
        Alcotest.test_case "ranges" `Quick test_index_ranges;
        Alcotest.test_case "duplicates/remove" `Quick test_index_duplicates_and_remove;
        QCheck_alcotest.to_alcotest prop_index_range_matches_filter;
      ] );
    ("storage.predicate", [ Alcotest.test_case "matches" `Quick test_predicate_matches ]);
    ( "storage.table",
      [
        Alcotest.test_case "pk and indexes" `Quick test_table_pk_and_indexes;
        Alcotest.test_case "prune" `Quick test_table_prune;
        Alcotest.test_case "prune mid-workload keeps visibility coherent"
          `Quick test_prune_mid_workload_visibility;
      ] );
    ("storage.catalog", [ Alcotest.test_case "basics" `Quick test_catalog ]);
  ]

let () = ignore value
