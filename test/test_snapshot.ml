(** Deterministic state snapshots (DESIGN.md §11).

    The load-bearing property: bootstrapping a node from a snapshot is
    indistinguishable from replaying every block — byte-identical chained
    state digests and sys.* query results, in both compaction modes.
    Units cover the transfer layer (tampered chunks are rejected), the
    WAL install guard (a crash mid-install recovers to a clean slate),
    compaction coherence with {!Brdb_storage.Table.prune}, and the peer
    restart decision boundary (gap == threshold replays; strictly greater
    bootstraps from a snapshot, even under chunk corruption). *)

open Brdb_node
module Block = Brdb_ledger.Block
module Identity = Brdb_crypto.Identity
module Value = Brdb_storage.Value
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api
module Snapshot = Brdb_snapshot.Snapshot
module Chunk = Brdb_snapshot.Chunk
module Msg = Brdb_consensus.Msg
module Clock = Brdb_sim.Clock
module TP = Test_peer

(* ---------------------------------------------------------------- harness *)

let orderer = Identity.create "orderer/snap"

let client = Identity.create "org1/snap"

(* DDL inside contracts is admin-only; the schema-creating setup tx must
   be signed by the org admin. *)
let admin = Identity.create "org1/admin"

let registry () =
  let r = Identity.Registry.create () in
  List.iter
    (fun id ->
      match Identity.Registry.register r id with
      | Ok () -> ()
      | Error _ -> assert false)
    [ orderer; client; admin ];
  r

let setup_contract =
  Registry.Native
    (fun ctx ->
      ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)"))

let put_contract =
  Registry.Native
    (fun ctx -> ignore (Api.execute ctx "INSERT INTO kv VALUES ($1, $2)"))

let bump_contract =
  Registry.Native
    (fun ctx -> ignore (Api.execute ctx "UPDATE kv SET v = v + 1 WHERE k = $1"))

let del_contract =
  Registry.Native
    (fun ctx -> ignore (Api.execute ctx "DELETE FROM kv WHERE k = $1"))

let make_node ~registry name =
  let node =
    Node_core.create
      (Node_core.make_config ~name ~org:"org1"
         ~flow:Node_core.Order_execute ~orgs:[ "org1" ] ())
      ~registry
  in
  Node_core.bootstrap node;
  List.iter
    (fun (name, body) -> Node_core.install_contract node ~name body)
    [
      ("setup", setup_contract);
      ("put", put_contract);
      ("bump", bump_contract);
      ("del", del_contract);
    ];
  node

type chain = { mutable prev : Block.t option }

let next_block chain txs =
  let height = (match chain.prev with None -> 0 | Some b -> b.Block.height) + 1 in
  let prev_hash =
    match chain.prev with None -> Block.genesis_hash | Some b -> b.Block.hash
  in
  let b = Block.sign (Block.create ~height ~txs ~metadata:"s" ~prev_hash) orderer in
  chain.prev <- Some b;
  b

let process node block =
  match Node_core.process_block node block with
  | Ok r -> r
  | Error e -> Alcotest.failf "process_block: %s" e

(* Random-ish but deterministic little workload: puts, bumps and deletes
   over a tiny keyspace, 3 transactions per block. Duplicate-key inserts
   abort — deliberately, so ledger statuses and the WAL tail carry all
   three outcomes into the snapshot. *)
type op = Put of int * int | Bump of int | Del of int

let op_tx i = function
  | Put (k, v) ->
      Block.make_tx
        ~id:(Printf.sprintf "t-%d" i)
        ~identity:client ~contract:"put"
        ~args:[ Value.Int k; Value.Int v ]
  | Bump k ->
      Block.make_tx
        ~id:(Printf.sprintf "t-%d" i)
        ~identity:client ~contract:"bump" ~args:[ Value.Int k ]
  | Del k ->
      Block.make_tx
        ~id:(Printf.sprintf "t-%d" i)
        ~identity:client ~contract:"del" ~args:[ Value.Int k ]

let blocks_of_ops ops =
  let chain = { prev = None } in
  let setup =
    next_block chain
      [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]
  in
  let rec group i = function
    | [] -> []
    | ops ->
        let rec take n l =
          match (n, l) with
          | 0, rest | _, ([] as rest) -> ([], rest)
          | n, x :: rest ->
              let xs, rest = take (n - 1) rest in
              (x :: xs, rest)
        in
        let batch, rest = take 3 ops in
        (* bind before consing: constructor arguments evaluate right to
           left, and heights must be sequential (CLAUDE.md gotcha) *)
        let b = next_block chain (List.mapi (fun j o -> op_tx (i + j) o) batch) in
        b :: group (i + List.length batch) rest
  in
  setup :: group 0 ops

(* What "byte-identical" means below: the rendered rows of a query. *)
let rendered node sql =
  match Node_core.query node sql with
  | Ok rs ->
      String.concat "\n"
        (List.map
           (fun row ->
             String.concat "|" (Array.to_list (Array.map Value.to_string row)))
           rs.Brdb_engine.Exec.rows)
  | Error e -> Alcotest.failf "query %S: %s" sql e

(* Live state and sys.* results must match replay in BOTH compaction
   modes; full PROVENANCE history (dead versions included) only survives
   [Archive] — [Pruned] drops dead chains by design, so it is compared
   only when the mode preserves it. *)
let observations ?(provenance = true) node =
  [
    rendered node "SELECT k, v FROM kv ORDER BY k";
    rendered node "SELECT height, txs, hash, prev_hash, state_digest \
                   FROM sys.blocks ORDER BY height";
    rendered node
      "SELECT gid, block, pos, txuser, contract, decision \
       FROM sys.transactions ORDER BY block, pos";
  ]
  @ if provenance then [ rendered node "PROVENANCE SELECT k, v FROM kv ORDER BY k" ] else []

let digest node ~height =
  match Node_core.state_digest node ~height with
  | Some d -> d
  | None -> Alcotest.failf "no state digest at height %d" height

(* Bootstrap a fresh node from [src]'s snapshot (round-tripped through the
   codec and the chunk layer) and replay [rest] on it. *)
let bootstrap_from ~registry ~compaction ~chunk_size src rest name =
  let snap = Node_core.export_snapshot src ~compaction in
  let payload = Snapshot.encode snap in
  let chunks = Chunk.split ~chunk_size payload in
  let m =
    Chunk.manifest_of_chunks ~height:snap.Snapshot.height
      ~state_digest:snap.Snapshot.state_digest ~chunk_size
      ~total_bytes:(String.length payload) chunks
  in
  if not (Chunk.verify_manifest m) then Alcotest.fail "manifest self-check";
  Array.iter
    (fun c ->
      if not (Chunk.verify_chunk m c) then Alcotest.fail "chunk self-check")
    chunks;
  let payload' =
    match Chunk.assemble m (Array.map (fun c -> Some c.Chunk.c_payload) chunks) with
    | Ok p -> p
    | Error e -> Alcotest.failf "assemble: %s" e
  in
  Alcotest.(check bool) "assembly is the identity" true (String.equal payload payload');
  let snap' =
    match Snapshot.decode payload' with
    | Ok s -> s
    | Error e -> Alcotest.failf "decode: %s" e
  in
  let fresh = make_node ~registry name in
  (match Node_core.install_snapshot fresh snap' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install: %s" e);
  List.iter (fun b -> ignore (process fresh b)) rest;
  (fresh, snap)

(* ------------------------------------------------------- qcheck property *)

let gen_ops =
  QCheck.Gen.(
    list_size (4 -- 18)
      (frequency
         [
           (4, map2 (fun k v -> Put (k, v)) (int_bound 6) (int_bound 99));
           (3, map (fun k -> Bump k) (int_bound 6));
           (2, map (fun k -> Del k) (int_bound 6));
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Put (k, v) -> Printf.sprintf "put %d=%d" k v
         | Bump k -> Printf.sprintf "bump %d" k
         | Del k -> Printf.sprintf "del %d" k)
       ops)

let arbitrary_case =
  QCheck.make
    ~print:(fun (ops, cut) -> Printf.sprintf "cut=%d %s" cut (print_ops ops))
    QCheck.Gen.(pair gen_ops (int_bound 1000))

let prop_bootstrap_equals_replay =
  QCheck.Test.make ~name:"snapshot bootstrap == full replay (both modes)"
    ~count:30 arbitrary_case (fun (ops, cut) ->
      let blocks = blocks_of_ops ops in
      let n = List.length blocks in
      (* snapshot somewhere strictly inside the chain *)
      let k = 1 + (cut mod n) in
      let prefix = List.filteri (fun i _ -> i < k) blocks in
      let rest = List.filteri (fun i _ -> i >= k) blocks in
      let reg = registry () in
      let replica = make_node ~registry:reg "replica" in
      List.iter (fun b -> ignore (process replica b)) blocks;
      List.iter
        (fun compaction ->
          let src =
            make_node ~registry:reg
              ("src-" ^ Snapshot.compaction_to_string compaction)
          in
          List.iter (fun b -> ignore (process src b)) prefix;
          let fresh, _ =
            bootstrap_from ~registry:reg ~compaction ~chunk_size:256 src rest
              ("boot-" ^ Snapshot.compaction_to_string compaction)
          in
          if Node_core.height fresh <> n then
            QCheck.Test.fail_reportf "height %d, wanted %d"
              (Node_core.height fresh) n;
          for h = 1 to n do
            if digest fresh ~height:h <> digest replica ~height:h then
              QCheck.Test.fail_reportf "%s: digest differs at height %d"
                (Snapshot.compaction_to_string compaction)
                h
          done;
          let provenance = compaction = Snapshot.Archive in
          List.iter2
            (fun got want ->
              if not (String.equal got want) then
                QCheck.Test.fail_reportf "%s: observation differs:\n%s\nvs\n%s"
                  (Snapshot.compaction_to_string compaction)
                  got want)
            (observations ~provenance fresh)
            (observations ~provenance replica))
        [ Snapshot.Archive; Snapshot.Pruned ];
      true)

(* ------------------------------------------------------------------ units *)

let mixed_ops =
  [
    Put (1, 10); Put (2, 20); Put (3, 30); Bump 1; Del 2; Put (2, 21);
    Bump 3; Put (1, 99) (* duplicate key: aborts *); Del 3; Bump 1;
  ]

let test_tampered_chunk_rejected () =
  let reg = registry () in
  let src = make_node ~registry:reg "src" in
  List.iter (fun b -> ignore (process src b)) (blocks_of_ops mixed_ops);
  let snap = Node_core.export_snapshot src ~compaction:Snapshot.Archive in
  let payload = Snapshot.encode snap in
  let chunks = Chunk.split ~chunk_size:128 payload in
  let m =
    Chunk.manifest_of_chunks ~height:snap.Snapshot.height
      ~state_digest:snap.Snapshot.state_digest ~chunk_size:128
      ~total_bytes:(String.length payload) chunks
  in
  Alcotest.(check bool) "several chunks" true (Array.length chunks > 3);
  (* flip one bit of one payload: that chunk — and only that chunk — must
     fail content-address verification *)
  let victim = Array.length chunks / 2 in
  let mangled =
    let p = Bytes.of_string chunks.(victim).Chunk.c_payload in
    Bytes.set p 0 (Char.chr (Char.code (Bytes.get p 0) lxor 1));
    { (chunks.(victim)) with Chunk.c_payload = Bytes.to_string p }
  in
  Alcotest.(check bool) "mangled chunk rejected" false (Chunk.verify_chunk m mangled);
  Alcotest.(check bool) "original chunk verifies" true
    (Chunk.verify_chunk m chunks.(victim));
  (* a manifest whose root was tampered with must fail its self-check *)
  let bad = { m with Chunk.m_root = String.map (fun _ -> 'a') m.Chunk.m_root } in
  Alcotest.(check bool) "tampered manifest rejected" false (Chunk.verify_manifest bad);
  (* a missing chunk is named by assemble *)
  let parts = Array.map (fun c -> Some c.Chunk.c_payload) chunks in
  parts.(victim) <- None;
  (match Chunk.assemble m parts with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "assemble accepted missing chunk");
  (* and a snapshot whose payload was tampered with decodes to an error or
     to a snapshot whose digests no longer chain — install must refuse *)
  let p = Bytes.of_string payload in
  Bytes.set p (Bytes.length p / 2)
    (Char.chr (Char.code (Bytes.get p (Bytes.length p / 2)) lxor 1));
  (match Snapshot.decode (Bytes.to_string p) with
  | Error _ -> ()
  | Ok tampered -> (
      let fresh = make_node ~registry:reg "fresh" in
      match Node_core.install_snapshot fresh tampered with
      | Error _ -> ()
      | Ok () ->
          (* the flipped bit can land in ignorable padding only if the
             state digests still chain — then state equals the source's *)
          Alcotest.(check string) "tamper was inert"
            (rendered src "SELECT k, v FROM kv ORDER BY k")
            (rendered fresh "SELECT k, v FROM kv ORDER BY k")))

let test_mid_install_crash_recovers () =
  let reg = registry () in
  let src = make_node ~registry:reg "src" in
  List.iter (fun b -> ignore (process src b)) (blocks_of_ops mixed_ops);
  let snap = Node_core.export_snapshot src ~compaction:Snapshot.Archive in
  let victim = make_node ~registry:reg "victim" in
  (* crash after the storage swap, before bookkeeping finalized: the WAL
     install guard is still set *)
  (match Node_core.install_snapshot ~crash_after_tables:true victim snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install (crash injection): %s" e);
  (* §3.6 restart path: the half-install is detected and wiped *)
  (match Node_core.recover victim with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "recover repaired a block?"
  | Error e -> Alcotest.failf "recover: %s" e);
  Alcotest.(check int) "clean slate: height 0" 0 (Node_core.height victim);
  (match Node_core.query victim "SELECT k FROM kv" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "half-installed table survived recovery");
  (* the transfer is idempotent: installing again from scratch succeeds *)
  (match Node_core.install_snapshot victim snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-install: %s" e);
  Alcotest.(check int) "installed height"
    (Node_core.height src) (Node_core.height victim);
  List.iter2
    (fun a b -> Alcotest.(check string) "state matches source" a b)
    (observations src) (observations victim)

let test_pruned_compaction_coherent () =
  let reg = registry () in
  let src = make_node ~registry:reg "src" in
  List.iter (fun b -> ignore (process src b)) (blocks_of_ops mixed_ops);
  let h = Node_core.height src in
  let archive = Node_core.export_snapshot src ~compaction:Snapshot.Archive in
  let pruned = Node_core.export_snapshot src ~compaction:Snapshot.Pruned in
  let ra = Snapshot.resident_versions archive in
  let rp = Snapshot.resident_versions pruned in
  Alcotest.(check bool)
    (Printf.sprintf "pruned resident (%d) < archive resident (%d)" rp ra)
    true (rp < ra);
  let na = make_node ~registry:reg "na" and np = make_node ~registry:reg "np" in
  (match Node_core.install_snapshot na archive with
  | Ok () -> ()
  | Error e -> Alcotest.failf "archive install: %s" e);
  (match Node_core.install_snapshot np pruned with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pruned install: %s" e);
  (* identical live state and digests either way (PROVENANCE history is
     the documented exception: pruned mode drops it) *)
  List.iter2
    (fun a b -> Alcotest.(check string) "live state matches" a b)
    (observations ~provenance:false na)
    (observations ~provenance:false np);
  Alcotest.(check string) "digests match"
    (digest na ~height:h) (digest np ~height:h);
  (* coherence with Table.prune: pruned capture dropped exactly what a
     prune below the snapshot height drops, so pruning the archive
     install converges on the pruned install, which has nothing left *)
  Alcotest.(check int) "archive - pruned == prunable" (ra - rp)
    (Node_core.prune na ~before:h ());
  Alcotest.(check int) "pruned install has nothing to prune" 0
    (Node_core.prune np ~before:h ())

(* -------------------------------------------------- peer-level (network) *)

let put_block fx i =
  TP.deliver_block fx
    [
      Block.make_tx
        ~id:(Printf.sprintf "n%d" i)
        ~identity:fx.TP.client ~contract:"put"
        ~args:[ Value.Int i; Value.Int i ];
    ]

let counter_of p name =
  Brdb_obs.Registry.counter
    (Brdb_obs.Obs.metrics (Brdb_node.Peer.obs p))
    ~node:(Brdb_node.Peer.name p) name

let test_restart_threshold_boundary () =
  let fx =
    TP.make_fx ~flow:Node_core.Order_execute ~snapshot_threshold:4 ()
  in
  TP.init_chain fx;
  let victim = List.nth fx.TP.peers 2 in
  (* decision unit, right on the boundary *)
  Alcotest.(check bool) "gap == threshold replays" true
    (Brdb_node.Peer.snapshot_decision victim ~gap:4 = `Replay);
  Alcotest.(check bool) "gap > threshold snapshots" true
    (Brdb_node.Peer.snapshot_decision victim ~gap:5 = `Snapshot);
  (* end-to-end, gap exactly at the threshold: block replay *)
  Brdb_node.Peer.crash victim;
  for i = 1 to 4 do put_block fx i done;
  Brdb_node.Peer.restart victim;
  ignore (Clock.run fx.TP.clock);
  Alcotest.(check (list int)) "caught up by replay" [ 5; 5; 5 ] (TP.heights fx);
  Alcotest.(check int) "no snapshot used" 0
    (Brdb_node.Peer.snapshots_installed victim);
  Alcotest.(check int) "blocks fetched instead" 4
    (Brdb_node.Peer.fetched_blocks victim);
  (* end-to-end, gap strictly beyond the threshold: snapshot bootstrap *)
  Brdb_node.Peer.crash victim;
  for i = 5 to 9 do put_block fx i done;
  Brdb_node.Peer.restart victim;
  ignore (Clock.run fx.TP.clock);
  Alcotest.(check (list int)) "caught up by snapshot" [ 10; 10; 10 ]
    (TP.heights fx);
  Alcotest.(check int) "exactly one snapshot install" 1
    (Brdb_node.Peer.snapshots_installed victim);
  (* the install surfaces in sys.snapshots on the bootstrapped node *)
  let rs =
    match
      Node_core.query (Brdb_node.Peer.core victim)
        "SELECT height, source FROM sys.snapshots"
    with
    | Ok rs -> rs.Brdb_engine.Exec.rows
    | Error e -> Alcotest.failf "sys.snapshots: %s" e
  in
  (match rs with
  | [ [| Value.Int 10; Value.Text src |] ] ->
      Alcotest.(check bool) "source is another peer" true
        (List.mem src [ "peer-1"; "peer-2" ])
  | _ -> Alcotest.fail "unexpected sys.snapshots rows");
  (* and the bootstrapped node keeps working: another block commits *)
  put_block fx 10;
  Alcotest.(check (list int)) "still in lockstep" [ 11; 11; 11 ] (TP.heights fx)

let test_snapshot_transfer_survives_corruption () =
  (* Chunks are bit-flipped in flight with high probability; content
     addressing must reject every mangled chunk and the retry/rotation
     machinery must still complete the bootstrap. Small chunks make the
     transfer long enough for corruption to actually hit. *)
  let fx =
    TP.make_fx ~flow:Node_core.Order_execute ~snapshot_threshold:2
      ~snapshot_chunk_size:64 ()
  in
  TP.init_chain fx;
  Msg.Net.set_corrupter fx.TP.net (function
    | Msg.Snapshot_chunk { height; chunk }
      when String.length chunk.Chunk.c_payload > 0 ->
        let p = Bytes.of_string chunk.Chunk.c_payload in
        Bytes.set p 0 (Char.chr (Char.code (Bytes.get p 0) lxor 1));
        Msg.Snapshot_chunk
          { height; chunk = { chunk with Chunk.c_payload = Bytes.to_string p } }
    | m -> m);
  let victim = List.nth fx.TP.peers 2 in
  Brdb_node.Peer.crash victim;
  for i = 1 to 6 do put_block fx i done;
  (* corrupt only towards the victim, so serving peers stay in lockstep *)
  List.iter
    (fun src ->
      Msg.Net.set_fault fx.TP.net ~src ~dst:"peer-3"
        { Brdb_sim.Network.drop = 0.; duplicate = 0.; corrupt = 0.35 })
    [ "peer-1"; "peer-2" ];
  Brdb_node.Peer.restart victim;
  ignore (Clock.run fx.TP.clock);
  Alcotest.(check (list int)) "bootstrap completed under corruption"
    [ 7; 7; 7 ] (TP.heights fx);
  Alcotest.(check int) "snapshot was used" 1
    (Brdb_node.Peer.snapshots_installed victim);
  Alcotest.(check bool) "corruption actually happened" true
    (Msg.Net.corrupted fx.TP.net > 0);
  Alcotest.(check int) "every mangled chunk was rejected"
    (Msg.Net.corrupted fx.TP.net)
    (counter_of victim "snapshot.chunks_corrupted");
  Alcotest.(check bool) "rejected chunks were re-fetched" true
    (counter_of victim "snapshot.chunks_retried" > 0);
  (* the acceptance bar: a chunk-fault-injected bootstrap still lands on
     the same chained state digest as the replicas that never crashed *)
  let dg p =
    match
      Node_core.state_digest (Brdb_node.Peer.core p)
        ~height:(Node_core.height (Brdb_node.Peer.core p))
    with
    | Some d -> d
    | None -> Alcotest.fail "missing state digest"
  in
  List.iter
    (fun p ->
      Alcotest.(check string) "state digests agree under corruption"
        (dg (List.hd fx.TP.peers))
        (dg p))
    fx.TP.peers

let suites =
  [
    ( "snapshot",
      [
        Alcotest.test_case "tampered chunks rejected" `Quick
          test_tampered_chunk_rejected;
        Alcotest.test_case "mid-install crash recovers via WAL" `Quick
          test_mid_install_crash_recovers;
        Alcotest.test_case "pruned compaction coherent with prune" `Quick
          test_pruned_compaction_coherent;
        Alcotest.test_case "restart threshold boundary" `Quick
          test_restart_threshold_boundary;
        Alcotest.test_case "transfer survives chunk corruption" `Quick
          test_snapshot_transfer_survives_corruption;
        QCheck_alcotest.to_alcotest prop_bootstrap_equals_replay;
      ] );
  ]
