let () =
  Alcotest.run "brdb"
    (List.concat
       [
         Test_util.suites;
         Test_crypto.suites;
         Test_sql.suites;
         Test_storage.suites;
         Test_engine.suites;
         Test_engine2.suites;
         Test_txn.suites;
         Test_ssi.suites;
         Test_sim.suites;
         Test_consensus.suites;
         Test_raft.suites;
         Test_contracts.suites;
         Test_node.suites;
         Test_ledger.suites;
         Test_core.suites;
         Test_peer.suites;
         Test_scenarios.suites;
         Test_misc.suites;
         Test_chaos.suites;
         Test_obs.suites;
         Test_sysviews.suites;
         Test_properties.suites;
         Test_snapshot.suites;
       ])
