open Brdb_sim

let test_clock_ordering () =
  let c = Clock.create () in
  let log = ref [] in
  Clock.schedule c ~delay:2.0 (fun () -> log := "b" :: !log);
  Clock.schedule c ~delay:1.0 (fun () -> log := "a" :: !log);
  Clock.schedule c ~delay:3.0 (fun () -> log := "c" :: !log);
  let n = Clock.run c in
  Alcotest.(check int) "events" 3 n;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "time" 3.0 (Clock.now c)

let test_clock_same_instant_fifo () =
  let c = Clock.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Clock.schedule c ~delay:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Clock.run c);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_nested_scheduling () =
  let c = Clock.create () in
  let log = ref [] in
  Clock.schedule c ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Clock.schedule c ~delay:0.5 (fun () -> log := "inner" :: !log));
  ignore (Clock.run c);
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "time" 1.5 (Clock.now c)

let test_clock_until () =
  let c = Clock.create () in
  let fired = ref 0 in
  Clock.schedule c ~delay:1.0 (fun () -> incr fired);
  Clock.schedule c ~delay:10.0 (fun () -> incr fired);
  let n = Clock.run ~until:5.0 c in
  Alcotest.(check int) "one fired" 1 n;
  Alcotest.(check int) "pending" 1 (Clock.pending c);
  Alcotest.(check (float 1e-9)) "time advanced to until" 5.0 (Clock.now c)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done;
  let c = Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.float (Rng.create ~seed:42) <> Rng.float c)

let test_rng_ranges () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "unit range" true (f >= 0. && f < 1.);
    let i = Rng.int r 10 in
    Alcotest.(check bool) "int range" true (i >= 0 && i < 10);
    let e = Rng.exponential r ~mean:2.0 in
    Alcotest.(check bool) "exp nonneg" true (e >= 0.)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:0.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean approx 0.5" true (abs_float (mean -. 0.5) < 0.02)

module Net = Network.Make (struct
  type payload = string
end)

let test_network_delivery () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:1 in
  let net = Net.create ~clock ~rng ~default_link:Network.lan_link in
  let inbox = ref [] in
  Net.register net ~name:"b" (fun ~src payload -> inbox := (src, payload) :: !inbox);
  ignore (Net.send net ~src:"a" ~dst:"b" ~size_bytes:100 "hello");
  ignore (Net.send net ~src:"a" ~dst:"nobody" ~size_bytes:100 "dropped");
  ignore (Clock.run clock);
  Alcotest.(check (list (pair string string))) "delivered" [ ("a", "hello") ] !inbox;
  Alcotest.(check int) "only one delivered" 1 (Net.delivered net);
  Alcotest.(check int) "bytes counted for both" 200 (Net.bytes_sent net);
  (* the silent drop to an unregistered destination is now visible *)
  Alcotest.(check int) "drop to dead node counted" 1 (Net.dropped net)

let test_network_drop_fault () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:2 in
  let net = Net.create ~clock ~rng ~default_link:Network.lan_link in
  let got = ref 0 in
  Net.register net ~name:"b" (fun ~src:_ _ -> incr got);
  Net.set_fault net ~src:"a" ~dst:"b" { Network.drop = 1.0; duplicate = 0.; corrupt = 0. };
  ignore (Net.send net ~src:"a" ~dst:"b" ~size_bytes:10 "x");
  ignore (Clock.run clock);
  Alcotest.(check int) "all dropped" 0 !got;
  Alcotest.(check int) "counted" 1 (Net.dropped net);
  (* clearing the fault restores delivery *)
  Net.set_fault net ~src:"a" ~dst:"b" Network.no_fault;
  ignore (Net.send net ~src:"a" ~dst:"b" ~size_bytes:10 "y");
  ignore (Clock.run clock);
  Alcotest.(check int) "delivered after clear" 1 !got;
  (* a partial drop rate loses roughly that fraction, deterministically *)
  Net.set_fault net ~src:"a" ~dst:"b" { Network.drop = 0.3; duplicate = 0.; corrupt = 0. };
  for _ = 1 to 1000 do
    ignore (Net.send net ~src:"a" ~dst:"b" ~size_bytes:10 "z")
  done;
  ignore (Clock.run clock);
  let lost = Net.dropped net - 1 in
  Alcotest.(check bool) "~30% lost" true (lost > 230 && lost < 370)

let test_network_duplicate_fault () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:3 in
  let net = Net.create ~clock ~rng ~default_link:Network.lan_link in
  let got = ref 0 in
  Net.register net ~name:"b" (fun ~src:_ _ -> incr got);
  Net.set_fault net ~src:"a" ~dst:"b" { Network.drop = 0.; duplicate = 1.0; corrupt = 0. };
  ignore (Net.send net ~src:"a" ~dst:"b" ~size_bytes:10 "x");
  ignore (Clock.run clock);
  Alcotest.(check int) "delivered twice" 2 !got;
  Alcotest.(check int) "duplication counted" 1 (Net.duplicated net);
  Alcotest.(check int) "both deliveries counted" 2 (Net.delivered net)

let test_network_partition_heal () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:4 in
  let net = Net.create ~clock ~rng ~default_link:Network.lan_link in
  let inbox = ref [] in
  List.iter
    (fun n -> Net.register net ~name:n (fun ~src payload -> inbox := (src, n, payload) :: !inbox))
    [ "a"; "b"; "c" ];
  Net.partition net ~name:"split" ~members:[ "c" ];
  ignore (Net.send net ~src:"a" ~dst:"c" ~size_bytes:10 "cut");
  ignore (Net.send net ~src:"c" ~dst:"a" ~size_bytes:10 "cut");
  ignore (Net.send net ~src:"a" ~dst:"b" ~size_bytes:10 "same side");
  ignore (Clock.run clock);
  Alcotest.(check (list (triple string string string)))
    "only the same-side message arrived"
    [ ("a", "b", "same side") ]
    !inbox;
  Alcotest.(check int) "partition drops counted" 2 (Net.dropped net);
  Net.heal net ~name:"split";
  ignore (Net.send net ~src:"a" ~dst:"c" ~size_bytes:10 "healed");
  ignore (Clock.run clock);
  Alcotest.(check bool) "healed link delivers" true
    (List.mem ("a", "c", "healed") !inbox)

let test_network_fault_free_stream_unchanged () =
  (* configuring no faults must not consume extra rng draws: two nets with
     the same seed, one with a fault set on an UNUSED link, produce
     identical delays on the used link *)
  let delays seed with_fault =
    let clock = Clock.create () in
    let rng = Rng.create ~seed in
    let net = Net.create ~clock ~rng ~default_link:Network.wan_link in
    Net.register net ~name:"b" (fun ~src:_ _ -> ());
    if with_fault then
      Net.set_fault net ~src:"x" ~dst:"y" { Network.drop = 0.5; duplicate = 0.5; corrupt = 0. };
    List.init 20 (fun _ -> Net.send net ~src:"a" ~dst:"b" ~size_bytes:100 "m")
  in
  Alcotest.(check (list (float 1e-12)))
    "same jitter stream" (delays 9 false) (delays 9 true)

let test_network_latency_model () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:1 in
  let net = Net.create ~clock ~rng ~default_link:Network.wan_link in
  let arrival = ref 0. in
  Net.register net ~name:"b" (fun ~src:_ _ -> arrival := Clock.now clock);
  let d = Net.send net ~src:"a" ~dst:"b" ~size_bytes:1_000_000 "big" in
  ignore (Clock.run clock);
  (* 8 Mbit over 55 Mbps ~ 145 ms plus ~50 ms latency *)
  Alcotest.(check bool) "transfer dominates" true (d > 0.150 && d < 0.250);
  Alcotest.(check (float 1e-9)) "arrival = delay" d !arrival;
  (* LAN is much faster *)
  let clock2 = Clock.create () in
  let net2 = Net.create ~clock:clock2 ~rng ~default_link:Network.lan_link in
  Net.register net2 ~name:"b" (fun ~src:_ _ -> ());
  let d2 = Net.send net2 ~src:"a" ~dst:"b" ~size_bytes:1_000_000 "big" in
  Alcotest.(check bool) "lan faster" true (d2 < d /. 10.)

let test_cpu_serialization () =
  let clock = Clock.create () in
  let cpu = Cpu.create clock in
  let finish = ref [] in
  Cpu.run cpu ~cost:1.0 (fun () -> finish := ("a", Clock.now clock) :: !finish);
  Cpu.run cpu ~cost:1.0 (fun () -> finish := ("b", Clock.now clock) :: !finish);
  Alcotest.(check bool) "backlog" true (Cpu.backlog cpu > 1.9);
  ignore (Clock.run clock);
  match List.rev !finish with
  | [ ("a", ta); ("b", tb) ] ->
      Alcotest.(check (float 1e-9)) "a at 1s" 1.0 ta;
      Alcotest.(check (float 1e-9)) "b queued behind a" 2.0 tb
  | _ -> Alcotest.fail "wrong completion order"

let test_cpu_run_waves () =
  let clock = Clock.create () in
  let cpu = Cpu.create ~cores:2 clock in
  Alcotest.(check int) "cores" 2 (Cpu.cores cpu);
  let seen = ref None in
  Cpu.run_waves cpu ~head:0.5 ~tail:0.25 ~waves:[| 0; 0; 0; 1 |]
    ~costs:[| 1.0; 1.0; 1.0; 1.0 |] (fun stats ->
      seen := Some (stats, Clock.now clock));
  ignore (Clock.run clock);
  match !seen with
  | None -> Alcotest.fail "run_waves callback never fired"
  | Some (stats, t) ->
      Alcotest.(check int) "waves" 2 stats.Cpu.wave_count;
      (* wave 0: three 1 s jobs on 2 cores -> 2 s; wave 1: one job -> 1 s;
         head 0.5 shifts the start, tail 0.25 trails the last wave *)
      Alcotest.(check (float 1e-9)) "exec elapsed" 3.0 stats.Cpu.exec_elapsed;
      Alcotest.(check (float 1e-9)) "exec busy" 4.0 stats.Cpu.exec_busy;
      Alcotest.(check (float 1e-9)) "completion" 3.75 t

let test_workload_poisson_rate () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:5 in
  let count = ref 0 in
  Workload.run ~clock ~rng ~rate:100. ~duration:10. ~submit:(fun _ -> incr count);
  ignore (Clock.run clock);
  (* ~1000 arrivals expected; Poisson sd ~ 32 *)
  Alcotest.(check bool) "rate approx" true (!count > 850 && !count < 1150)

let test_workload_uniform () =
  let clock = Clock.create () in
  let seen = ref [] in
  Workload.run_uniform ~clock ~rate:10. ~duration:1. ~submit:(fun i -> seen := i :: !seen);
  ignore (Clock.run clock);
  Alcotest.(check int) "10 arrivals" 10 (List.length !seen)

let test_metrics_summary () =
  let m = Metrics.create () in
  Metrics.record_submit m ~time:0.;
  Metrics.record_submit m ~time:0.;
  Metrics.record_submit m ~time:0.;
  Metrics.record_commit m ~submitted:0. ~now:0.5;
  Metrics.record_commit m ~submitted:0. ~now:1.5;
  Metrics.record_abort m;
  Metrics.record_block_received m;
  Metrics.record_block m ~size:2 ~bpt:0.010 ~bet:0.008 ~bct:0.002;
  Metrics.record_tet m 0.0002;
  Metrics.record_missing_tx m 5;
  let s = Metrics.summarize m ~duration_s:10. in
  Alcotest.(check (float 1e-9)) "tput" 0.2 s.Metrics.throughput_tps;
  Alcotest.(check (float 1e-9)) "lat" 1.0 s.Metrics.avg_latency_s;
  Alcotest.(check (float 1e-9)) "bpt ms" 10. s.Metrics.bpt_ms;
  Alcotest.(check (float 1e-9)) "mt" 0.5 s.Metrics.mt_per_s;
  Alcotest.(check int) "aborted" 1 s.Metrics.aborted

let test_stat_percentile_edges () =
  let empty = Metrics.Stat.create () in
  Alcotest.(check (float 0.)) "empty p50" 0. (Metrics.Stat.percentile empty 50.);
  Alcotest.(check (float 0.)) "empty p100" 0. (Metrics.Stat.percentile empty 100.);
  let single = Metrics.Stat.create () in
  Metrics.Stat.add single 42.;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "single p%g" p)
        42.
        (Metrics.Stat.percentile single p))
    [ 0.; 50.; 95.; 100. ];
  let s = Metrics.Stat.create () in
  List.iter (Metrics.Stat.add s) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check (float 0.)) "p0 = min" (Metrics.Stat.min s)
    (Metrics.Stat.percentile s 0.);
  Alcotest.(check (float 0.)) "p100 = max" (Metrics.Stat.max s)
    (Metrics.Stat.percentile s 100.);
  Alcotest.(check bool) "monotone" true
    (Metrics.Stat.percentile s 25. <= Metrics.Stat.percentile s 75.);
  (* duplicates: percentiles sit on the repeated value *)
  let d = Metrics.Stat.create () in
  List.iter (Metrics.Stat.add d) [ 7.; 7.; 7.; 7. ];
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "dupes p%g" p)
        7.
        (Metrics.Stat.percentile d p))
    [ 0.; 50.; 95.; 100. ];
  (* samples are retained in insertion order *)
  Alcotest.(check (list (float 0.)))
    "samples order" [ 5.; 1.; 3.; 2.; 4. ] (Metrics.Stat.samples s)

let test_cost_model_shapes () =
  let m = Cost_model.default in
  (* Calibration targets from Tables 4/5 (within 20%). *)
  let close msg expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.4f vs %.4f" msg expected actual)
      true
      (abs_float (actual -. expected) /. expected < 0.25)
  in
  let tet = Cost_model.tet m Cost_model.Simple in
  close "OE bet bs=100" 0.047 (Cost_model.oe_bet m ~n:100 ~tet);
  close "OE bet bs=500" 0.245 (Cost_model.oe_bet m ~n:500 ~tet);
  close "OE bct bs=100" 0.0083 (Cost_model.oe_bct m ~n:100);
  close "EO bet bs=100" 0.0186 (Cost_model.eo_bet m ~n:100 ~missing:0 ~tet);
  close "EO bct bs=100" 0.0167 (Cost_model.eo_bct m ~n:100);
  (* complex-join is ~160x simple *)
  let r = Cost_model.tet m Cost_model.Complex_join /. tet in
  Alcotest.(check bool) "160x" true (r > 140. && r < 180.);
  (* serial baseline peaks near 800 tps at bs=100 *)
  let serial_tput = 100. /. Cost_model.serial_bpt m ~n:100 ~tet in
  Alcotest.(check bool) "serial ~800tps" true (serial_tput > 650. && serial_tput < 950.);
  (* OE peak ~1800, EO peak ~2700 at bs=100 *)
  let oe_peak =
    100. /. (Cost_model.oe_bet m ~n:100 ~tet +. Cost_model.oe_bct m ~n:100)
  in
  let eo_peak =
    100. /. (Cost_model.eo_bet m ~n:100 ~missing:0 ~tet +. Cost_model.eo_bct m ~n:100)
  in
  Alcotest.(check bool) "OE peak ~1800" true (oe_peak > 1500. && oe_peak < 2100.);
  Alcotest.(check bool) "EO peak ~2700" true (eo_peak > 2400. && eo_peak < 3100.);
  Alcotest.(check bool) "EO > OE" true (eo_peak > oe_peak *. 1.3)

let test_parallel_time_makespan () =
  Alcotest.(check (float 0.)) "empty" 0. (Cost_model.parallel_time ~cores:4 []);
  (* uniform jobs degrade to the old ceil-div arithmetic: ceil(9/4) rounds *)
  Alcotest.(check (float 1e-9)) "uniform = ceil-div rounds" 0.6
    (Cost_model.parallel_time ~cores:4 (List.init 9 (fun _ -> 0.2)));
  (* greedy list-scheduling packs short jobs around the long one *)
  Alcotest.(check (float 1e-9)) "greedy packing" 1.0
    (Cost_model.parallel_time ~cores:2 [ 1.0; 0.25; 0.25; 0.25; 0.25 ]);
  (* the closed-form oe_bet still equals the pre-refactor ceil-div form *)
  let m = Cost_model.default in
  let tet = Cost_model.tet m Cost_model.Simple in
  let ceil_div a b = (a + b - 1) / b in
  let old_form =
    (100. *. m.Cost_model.oe_start)
    +. (tet *. float_of_int (ceil_div 100 m.Cost_model.cores))
  in
  Alcotest.(check (float 1e-12)) "oe_bet = ceil-div form" old_form
    (Cost_model.oe_bet m ~n:100 ~tet)

let suites =
  [
    ( "sim.clock",
      [
        Alcotest.test_case "ordering" `Quick test_clock_ordering;
        Alcotest.test_case "same-instant fifo" `Quick test_clock_same_instant_fifo;
        Alcotest.test_case "nested" `Quick test_clock_nested_scheduling;
        Alcotest.test_case "until" `Quick test_clock_until;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "ranges" `Quick test_rng_ranges;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
      ] );
    ( "sim.network",
      [
        Alcotest.test_case "delivery" `Quick test_network_delivery;
        Alcotest.test_case "latency model" `Quick test_network_latency_model;
        Alcotest.test_case "drop fault" `Quick test_network_drop_fault;
        Alcotest.test_case "duplicate fault" `Quick test_network_duplicate_fault;
        Alcotest.test_case "partition and heal" `Quick test_network_partition_heal;
        Alcotest.test_case "fault-free rng stream unchanged" `Quick
          test_network_fault_free_stream_unchanged;
      ] );
    ( "sim.cpu",
      [
        Alcotest.test_case "serialization" `Quick test_cpu_serialization;
        Alcotest.test_case "wave scheduling" `Quick test_cpu_run_waves;
      ] );
    ( "sim.workload",
      [
        Alcotest.test_case "poisson rate" `Quick test_workload_poisson_rate;
        Alcotest.test_case "uniform" `Quick test_workload_uniform;
      ] );
    ( "sim.metrics",
      [
        Alcotest.test_case "summary" `Quick test_metrics_summary;
        Alcotest.test_case "percentile edge cases" `Quick
          test_stat_percentile_edges;
      ] );
    ( "sim.cost_model",
      [
        Alcotest.test_case "calibration shapes" `Quick test_cost_model_shapes;
        Alcotest.test_case "parallel_time makespan" `Quick
          test_parallel_time_makespan;
      ] );
  ]
