(* The SQL-queryable introspection layer (DESIGN.md §10): sys.* virtual
   tables, EXPLAIN ANALYZE, and the online divergence monitor. *)

module B = Brdb_core.Blockchain_db
module Chaos = Brdb_core.Chaos
module Value = Brdb_storage.Value
module Catalog = Brdb_storage.Catalog
module Node_core = Brdb_node.Node_core
module Peer = Brdb_node.Peer
module Exec = Brdb_engine.Exec
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api
module Reg = Brdb_obs.Registry

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let init_net ?(seed = 42) ?(tracing = false) ?(block_size = 10) () =
  let config =
    {
      (B.default_config ()) with
      B.seed;
      tracing;
      block_size;
      block_timeout = 0.25;
    }
  in
  let net = B.create config in
  B.install_contract net ~name:"init"
    (Registry.Native
       (fun ctx ->
         ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")));
  (match
     B.install_contract_source net ~name:"put" "INSERT INTO kv VALUES ($1, $2)"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let admin = B.admin net "org1" in
  let id = B.submit net ~user:admin ~contract:"init" ~args:[] in
  B.settle net;
  (match B.status net id with
  | Some B.Committed -> ()
  | _ -> Alcotest.fail "init did not commit");
  net

let query_ok net ?node sql =
  match B.query net ?node sql with
  | Ok rs -> rs
  | Error e -> Alcotest.failf "%s failed: %s" sql e

let render (rs : Exec.result_set) =
  String.concat ","  rs.Exec.columns
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (fun row ->
           String.concat "|" (Array.to_list (Array.map Value.encode row)))
         rs.Exec.rows)

(* A workload with guaranteed conflicts: keys collide, so some
   transactions abort with a Table-2 class. *)
let conflicting_workload ?(n = 12) net =
  let u = B.register_user net "sys/alice" in
  for i = 1 to n do
    ignore
      (B.submit net ~user:u ~contract:"put"
         ~args:[ Value.Int (1 + (i mod 4)); Value.Int i ])
  done;
  B.settle net

(* --- view contents ------------------------------------------------------- *)

let test_views_populated () =
  let net = init_net () in
  conflicting_workload net;
  let blocks = query_ok net "SELECT height, txs, committime FROM sys.blocks" in
  Alcotest.(check bool) "at least two blocks" true (List.length blocks.Exec.rows >= 2);
  List.iter
    (fun row ->
      match row with
      | [| Value.Int h; Value.Int txs; Value.Int ct |] ->
          Alcotest.(check bool) "positive height" true (h >= 1);
          Alcotest.(check bool) "has txs" true (txs >= 1);
          Alcotest.(check int) "committime = height (pgledger convention)" h ct
      | _ -> Alcotest.fail "bad sys.blocks row")
    blocks.Exec.rows;
  let txs =
    query_ok net "SELECT gid, decision FROM sys.transactions WHERE decision = 'aborted'"
  in
  Alcotest.(check bool) "conflicting workload aborted something" true
    (txs.Exec.rows <> []);
  (* sys.aborts totals must equal the per-transaction abort rows. *)
  let aborts =
    match (query_ok net "SELECT SUM(n) FROM sys.aborts").Exec.rows with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "bad sys.aborts sum"
  in
  Alcotest.(check int) "sys.aborts matches sys.transactions"
    (List.length txs.Exec.rows) aborts;
  (* The views join with ordinary tables like any other relation. *)
  let joined =
    query_ok net
      "SELECT t.gid FROM sys.transactions t JOIN sys.blocks b ON t.block = \
       b.height WHERE t.decision = 'committed'"
  in
  Alcotest.(check bool) "sys views join" true (joined.Exec.rows <> []);
  let tables = query_ok net "SELECT name, live FROM sys.tables WHERE name = 'kv'" in
  (match tables.Exec.rows with
  | [ [| Value.Text _; Value.Int live |] ] ->
      Alcotest.(check int) "kv live rows" 4 live
  | _ -> Alcotest.fail "kv missing from sys.tables");
  match (query_ok net "SELECT node, height FROM sys.nodes").Exec.rows with
  | rows when List.length rows = 3 -> ()
  | _ -> Alcotest.fail "sys.nodes should list all three peers"

let test_views_read_only () =
  let net = init_net () in
  conflicting_workload net;
  let expect_reject sql =
    match B.query net sql with
    | Ok _ -> Alcotest.failf "%s should have been rejected" sql
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s rejected as read-only (got: %s)" sql e)
          true
          (e = "sys.* tables are read-only"
          || e = "read-only queries cannot modify state")
  in
  expect_reject "INSERT INTO sys.blocks VALUES (99, 1, 'x', 'y', 99, 'z')";
  expect_reject "UPDATE sys.aborts SET n = 0 WHERE class = 'uniqueness'";
  expect_reject "DELETE FROM sys.transactions WHERE block = 1";
  expect_reject "INSERT INTO sys.spans VALUES ('x', 0, 1, 0.0, 0.0)";
  expect_reject "UPDATE sys.critical_path SET headroom = 99.0 WHERE height = 1";
  expect_reject "DELETE FROM sys.critical_path WHERE height = 1";
  expect_reject "DROP TABLE sys.blocks";
  expect_reject "CREATE TABLE sys.mine (a INT PRIMARY KEY)";
  expect_reject "CREATE UNIQUE INDEX sys_idx ON sys.blocks (height)";
  (* Catalog-level guard, independent of the executor. *)
  let catalog = Catalog.create () in
  (match
     Brdb_storage.Schema.create ~name:"sys.rogue"
       ~columns:
         [
           {
             Brdb_storage.Schema.name = "a";
             ty = Brdb_sql.Ast.T_int;
             not_null = false;
             primary_key = true;
           };
         ]
   with
  | Error e -> Alcotest.fail e
  | Ok schema -> (
      match Catalog.create_table catalog schema with
      | Ok _ -> Alcotest.fail "catalog accepted a sys.* base table"
      | Error e ->
          Alcotest.(check string) "catalog guard" "sys.* tables are read-only" e));
  (* PROVENANCE over a virtual table is a plain read, not a crash:
     materialized rows carry a synthetic creator block. *)
  let rs = query_ok net "PROVENANCE SELECT height FROM sys.blocks WHERE height = 1" in
  Alcotest.(check int) "provenance no-op on sys views" 1 (List.length rs.Exec.rows);
  let rs =
    query_ok net "PROVENANCE SELECT height FROM sys.critical_path WHERE height = 1"
  in
  Alcotest.(check int) "provenance no-op on sys.critical_path" 1
    (List.length rs.Exec.rows)

let test_contracts_cannot_read_sys () =
  let net = init_net () in
  (match
     B.install_contract_source net ~name:"spy" "SELECT n FROM sys.aborts"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the profiling views obey the same visibility rule: a contract that
     could read sys.critical_path would make commit decisions depend on
     node-local instrumentation *)
  (match
     B.install_contract_source net ~name:"spy_profile"
       "SELECT headroom FROM sys.critical_path"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let u = B.register_user net "sys/mallory" in
  let check_spy contract =
    let id = B.submit net ~user:u ~contract ~args:[] in
    B.settle net;
    match B.status net id with
    | Some (B.Aborted reason) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s abort mentions contract restriction (got: %s)"
             contract reason)
          true
          (contains reason "not readable from contracts")
    | s ->
        Alcotest.failf "contract %s reading sys.* should abort, got %s" contract
          (match s with
          | Some B.Committed -> "committed"
          | Some (B.Rejected r) -> "rejected: " ^ r
          | None -> "undecided"
          | Some (B.Aborted _) -> assert false)
  in
  check_spy "spy";
  check_spy "spy_profile"

(* --- determinism: byte-identical across nodes ----------------------------- *)

let test_views_byte_identical_across_nodes () =
  let net = init_net ~seed:7 () in
  conflicting_workload net;
  List.iter
    (fun sql ->
      let reference = render (query_ok net ~node:0 sql) in
      List.iter
        (fun node ->
          Alcotest.(check string)
            (Printf.sprintf "%s identical on node %d" sql node)
            reference
            (render (query_ok net ~node sql)))
        [ 1; 2 ])
    [
      "SELECT * FROM sys.blocks";
      "SELECT * FROM sys.transactions";
      "SELECT * FROM sys.aborts";
      "SELECT * FROM sys.tables";
      "SELECT * FROM sys.indexes";
      (* the dependency graph is replicated SSI metadata, so the per-block
         critical path is consensus-deterministic too *)
      "SELECT * FROM sys.critical_path";
    ]

(* --- profiling views (ISSUE 7) -------------------------------------------- *)

let test_profiling_views () =
  let net = init_net ~tracing:true () in
  conflicting_workload net;
  (* inserts neither read nor claim versions, so they carry no dependency
     edges; colliding UPDATEs do (rw antidependencies + first-updater-wins
     claims on the overwritten version) *)
  (match
     B.install_contract_source net ~name:"bump"
       "UPDATE kv SET v = $2 WHERE k = $1"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let u = B.register_user net "sys/update" in
  for i = 1 to 8 do
    ignore
      (B.submit net ~user:u ~contract:"bump"
         ~args:[ Value.Int 1; Value.Int (100 + i) ])
  done;
  B.settle net;
  (* sys.critical_path: one row per block, headroom = serial / critical,
     critical never exceeds serial, wave count at least 1 *)
  let cp =
    query_ok net
      "SELECT height, txs, edges, serial_ms, critical_ms, headroom, waves \
       FROM sys.critical_path"
  in
  Alcotest.(check bool) "critical path rows" true (cp.Exec.rows <> []);
  List.iter
    (fun row ->
      match row with
      | [| Value.Int h; Value.Int txs; Value.Int edges; Value.Float serial;
           Value.Float critical; Value.Float headroom; Value.Int waves |] ->
          Alcotest.(check bool) "height >= 1" true (h >= 1);
          Alcotest.(check bool) "txs >= 1" true (txs >= 1);
          Alcotest.(check bool) "edges >= 0" true (edges >= 0);
          Alcotest.(check bool) "critical <= serial" true
            (critical <= serial +. 1e-9);
          Alcotest.(check bool) "headroom >= 1" true (headroom >= 1.0 -. 1e-9);
          Alcotest.(check bool) "waves in [1, txs]" true
            (waves >= 1 && waves <= txs)
      | _ -> Alcotest.fail "bad sys.critical_path row")
    cp.Exec.rows;
  (* the conflicting workload serializes colliding keys: at least one block
     must carry dependency edges and more than one execution wave *)
  Alcotest.(check bool) "some block has dependency edges" true
    (List.exists
       (fun row ->
         match row with [| _; _; Value.Int e; _; _; _; _ |] -> e > 0 | _ -> false)
       cp.Exec.rows);
  (* sys.spans: flame-style aggregate of the node's span tree *)
  let spans =
    query_ok net "SELECT path, depth, events, total_ms, self_ms FROM sys.spans"
  in
  Alcotest.(check bool) "span rows" true (spans.Exec.rows <> []);
  List.iter
    (fun row ->
      match row with
      | [| Value.Text path; Value.Int depth; Value.Int events;
           Value.Float total; Value.Float self |] ->
          Alcotest.(check bool) "path non-empty" true (path <> "");
          Alcotest.(check bool) "events >= 1" true (events >= 1);
          Alcotest.(check bool) "self within total" true
            (self >= 0. && self <= total +. 1e-9);
          (* depth = number of ';'-separated path segments - 1 *)
          let segs =
            List.length (String.split_on_char ';' path)
          in
          Alcotest.(check int) (path ^ " depth matches path") (segs - 1) depth
      | _ -> Alcotest.fail "bad sys.spans row")
    spans.Exec.rows;
  let paths =
    List.filter_map
      (fun row ->
        match row with [| Value.Text p; _; _; _; _ |] -> Some p | _ -> None)
      spans.Exec.rows
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("sys.spans has " ^ expected) true
        (List.mem expected paths))
    [ "order"; "order;block"; "order;block;exec"; "order;block;commit" ];
  (* with tracing disabled the view stays queryable and empty — no stale
     instrumentation leaks into a quiet deployment *)
  let quiet = init_net ~tracing:false () in
  conflicting_workload quiet;
  Alcotest.(check int) "sys.spans empty when tracing off" 0
    (List.length (query_ok quiet "SELECT * FROM sys.spans").Exec.rows);
  Alcotest.(check bool) "sys.critical_path populated even when tracing off"
    true
    ((query_ok quiet "SELECT * FROM sys.critical_path").Exec.rows <> [])

(* --- EXPLAIN ANALYZE ------------------------------------------------------ *)

let test_explain_analyze_annotates_and_is_neutral () =
  let net = init_net ~tracing:true () in
  conflicting_workload net;
  let core = Peer.core (B.peer net 0) in
  let snapshot () =
    let reg_entries = Reg.snapshot (Brdb_obs.Obs.metrics (B.obs net)) in
    let totals = Exec.scan_counts (Node_core.exec_totals core) in
    let pending = Brdb_txn.Manager.pending_count (Node_core.manager core) in
    let versions =
      List.filter_map
        (fun name ->
          Option.map
            (fun t -> (name, Brdb_storage.Table.version_count t))
            (Catalog.find (Node_core.catalog core) name))
        (Catalog.table_names (Node_core.catalog core))
    in
    let digest = Node_core.state_digest core ~height:(Node_core.height core) in
    let traces = List.length (Brdb_obs.Trace.events (Brdb_obs.Obs.trace (B.obs net))) in
    (reg_entries, totals, pending, versions, digest, traces)
  in
  let baseline_rows =
    List.length (query_ok net "SELECT * FROM kv WHERE k > 1").Exec.rows
  in
  let before = snapshot () in
  (match B.explain_analyze net "SELECT * FROM kv WHERE k > 1" with
  | Error e -> Alcotest.fail e
  | Ok (plan, stats) ->
      (* The annotation carries the actual executor counters. *)
      let rows =
        List.fold_left
          (fun acc (_, _, n) -> acc + n)
          0
          (Exec.scan_counts stats)
      in
      Alcotest.(check int) "stats row count matches a real execution"
        baseline_rows rows;
      Alcotest.(check bool) "plan shows actual counters" true
        (contains plan (Printf.sprintf "actual rows=%d" baseline_rows));
      Alcotest.(check bool) "plan shows modelled time" true
        (contains plan "time="));
  Alcotest.(check bool) "EXPLAIN ANALYZE leaves no residue" true
    (before = snapshot ());
  (* Writes and DDL are refused up front. *)
  (match B.explain_analyze net "INSERT INTO kv VALUES (99, 99)" with
  | Ok _ -> Alcotest.fail "EXPLAIN ANALYZE accepted DML"
  | Error e ->
      Alcotest.(check string) "EA rejects non-SELECT"
        "EXPLAIN ANALYZE supports SELECT statements only" e);
  match B.explain_analyze net "SELECT * FROM sys.aborts" with
  | Ok (plan, _) ->
      Alcotest.(check bool) "EA works on sys views" true
        (contains plan "actual rows=")
  | Error e -> Alcotest.fail e

(* --- divergence monitor --------------------------------------------------- *)

let test_bisection_finds_tampered_height () =
  let net = init_net ~seed:11 () in
  let u = B.register_user net "sys/bob" in
  for i = 1 to 10 do
    ignore
      (B.submit net ~user:u ~contract:"put"
         ~args:[ Value.Int (100 + i); Value.Int i ]);
    B.settle net
  done;
  Alcotest.(check (option int)) "healthy cluster has no divergence" None
    (Chaos.find_divergence net);
  let victim = Peer.core (B.peer net 1) in
  let target = Node_core.height victim - 3 in
  Node_core.tamper_digest_for_test victim ~height:target;
  Alcotest.(check (option int)) "bisection pinpoints the first bad block"
    (Some target) (Chaos.find_divergence net);
  (* The digest accessor agrees with what the view publishes. *)
  match
    B.query net ~node:1
      ~params:[| Value.Int target |]
      "SELECT state_digest FROM sys.blocks WHERE height = $1"
  with
  | Ok { Exec.rows = [ [| Value.Text d |] ]; _ } ->
      Alcotest.(check (option string)) "state_digest accessor matches view"
        (Some d)
        (Node_core.state_digest victim ~height:target)
  | Ok _ -> Alcotest.fail "bad digest row"
  | Error e -> Alcotest.fail e

(* --- cross-node agreement under chaos (qcheck) ---------------------------- *)

let prop_sys_views_agree_under_chaos =
  (* Under a seeded fault schedule (a crash/restart cycle plus catch-up),
     every node must publish the same sys.transactions decisions and the
     same sys.blocks chained digests — the abort *reason* columns are
     node-local, but gid/decision and the digests are consensus-critical. *)
  QCheck.Test.make
    ~name:"sys views: decisions and digests agree across nodes under chaos"
    ~count:6
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999))
    (fun seed ->
      let net = init_net ~seed ~block_size:6 () in
      let u = B.register_user net "sys/chaos" in
      let put i =
        ignore
          (B.submit net ~user:u ~contract:"put"
             ~args:[ Value.Int (1 + (i mod 7)); Value.Int i ])
      in
      for i = 1 to 15 do put i done;
      B.run net ~seconds:0.4;
      let victim = B.peer net (seed mod 3) in
      Peer.crash victim;
      for i = 16 to 30 do put i done;
      B.run net ~seconds:0.8;
      Peer.restart victim;
      B.settle net;
      (* drive until every node holds the same height *)
      let height n = Node_core.height (Peer.core (B.peer net n)) in
      let rounds = ref 0 in
      while
        (not (height 0 = height 1 && height 1 = height 2)) && !rounds < 40
      do
        incr rounds;
        B.run net ~seconds:0.5
      done;
      if not (height 0 = height 1 && height 1 = height 2) then
        QCheck.Test.fail_reportf "seed %d: heights never converged" seed;
      List.iter
        (fun sql ->
          let reference = render (query_ok net ~node:0 sql) in
          List.iter
            (fun node ->
              let got = render (query_ok net ~node sql) in
              if got <> reference then
                QCheck.Test.fail_reportf
                  "seed %d: %s differs between node 0 and node %d:\n%s\n--\n%s"
                  seed sql node reference got)
            [ 1; 2 ])
        [
          "SELECT gid, block, decision FROM sys.transactions";
          "SELECT height, txs, hash, state_digest FROM sys.blocks";
        ];
      true)

let suites =
  [
    ( "sysviews",
      [
        Alcotest.test_case "views populated and joinable" `Quick
          test_views_populated;
        Alcotest.test_case "sys.* rejects writes and DDL" `Quick
          test_views_read_only;
        Alcotest.test_case "contracts cannot read sys.*" `Quick
          test_contracts_cannot_read_sys;
        Alcotest.test_case "byte-identical across nodes" `Quick
          test_views_byte_identical_across_nodes;
        Alcotest.test_case "profiling views (sys.spans, sys.critical_path)"
          `Quick test_profiling_views;
        Alcotest.test_case "EXPLAIN ANALYZE annotates, leaves no residue"
          `Quick test_explain_analyze_annotates_and_is_neutral;
        Alcotest.test_case "SQL bisection finds tampered digest" `Quick
          test_bisection_finds_tampered_height;
        QCheck_alcotest.to_alcotest prop_sys_views_agree_under_chaos;
      ] );
  ]
