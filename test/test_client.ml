(* Client plane (ISSUE 10): admission control, batch authentication,
   verifiable reads.

   The load-bearing property here is the admission oracle: with admission
   control on, the committed state and every per-block write-set hash are
   byte-identical to an admission-off run of the same workload — early
   aborts only ever remove transactions that would have aborted
   server-side anyway. The oracle runs at the Node_core level (blocks
   built by hand, no network) so including/excluding a transaction cannot
   perturb anything but block contents. *)

module Node_core = Brdb_node.Node_core
module Block = Brdb_ledger.Block
module Identity = Brdb_crypto.Identity
module Merkle = Brdb_crypto.Merkle
module Value = Brdb_storage.Value
module Version = Brdb_storage.Version
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api
module Cutter = Brdb_consensus.Cutter
module B = Brdb_core.Blockchain_db
module Oreg = Brdb_obs.Registry
module Obs = Brdb_obs.Obs
module Admission = Brdb_client.Admission
module Proof = Brdb_client.Proof
module Session = Brdb_client.Session

(* ---------------------------------------------------------------- harness *)

let keyspace = 3

let setup_contract =
  Registry.Native
    (fun ctx ->
      ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)");
      for k = 0 to keyspace - 1 do
        Api.set_local ctx "k" (Value.Int k);
        ignore (Api.execute ctx "INSERT INTO kv VALUES (:k, 100)")
      done)

(* [$2] is a uniqueness tag so concurrent sessions produce distinct EO
   content-hash ids; the contract ignores it. *)
let bump_contract =
  Registry.Native
    (fun ctx -> ignore (Api.execute ctx "UPDATE kv SET v = v + 1 WHERE k = $1"))

let put_contract =
  Registry.Native
    (fun ctx -> ignore (Api.execute ctx "INSERT INTO kv VALUES ($1, $2)"))

let orderer = Identity.create "orderer/client"

let client = Identity.create "org1/client"

let admin = Identity.create "org1/admin"

let registry () =
  let r = Identity.Registry.create () in
  List.iter
    (fun id ->
      match Identity.Registry.register r id with
      | Ok () -> ()
      | Error _ -> assert false)
    [ orderer; client; admin ];
  r

let make_node ~registry name =
  let node =
    Node_core.create
      (Node_core.make_config ~name ~org:"org1" ~flow:Node_core.Execute_order
         ~orgs:[ "org1" ] ())
      ~registry
  in
  Node_core.bootstrap node;
  Node_core.install_contract node ~name:"setup" setup_contract;
  Node_core.install_contract node ~name:"bump" bump_contract;
  Node_core.install_contract node ~name:"put" put_contract;
  node

type chain = { mutable prev : Block.t option }

let next_block chain txs =
  let height = (match chain.prev with None -> 0 | Some b -> b.Block.height) + 1 in
  let prev_hash =
    match chain.prev with None -> Block.genesis_hash | Some b -> b.Block.hash
  in
  let b = Block.sign (Block.create ~height ~txs ~metadata:"c" ~prev_hash) orderer in
  chain.prev <- Some b;
  b

let process node block =
  match Node_core.process_block node block with
  | Ok r -> r
  | Error e -> Alcotest.failf "process_block: %s" e

let boot () =
  let registry = registry () in
  let node = make_node ~registry "A" in
  let chain = { prev = None } in
  let r =
    process node
      (next_block chain
         [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ])
  in
  (match r.Node_core.br_statuses with
  | [ (_, Node_core.S_committed) ] -> ()
  | _ -> Alcotest.fail "setup tx failed");
  (node, chain)

let bump_tx ~key ~tag ~snapshot =
  Block.make_eo_tx ~identity:client ~contract:"bump"
    ~args:[ Value.Int key; Value.Int tag ]
    ~snapshot

let put_tx ~key ~v ~snapshot =
  Block.make_eo_tx ~identity:client ~contract:"put"
    ~args:[ Value.Int key; Value.Int v ]
    ~snapshot

let state_of node =
  match Node_core.query node "SELECT k, v FROM kv ORDER BY k" with
  | Ok rs ->
      List.map
        (fun row -> Array.to_list (Array.map Value.to_string row))
        rs.Brdb_engine.Exec.rows
  | Error e -> Alcotest.failf "query: %s" e

let flip_byte s i =
  if String.length s = 0 then s
  else begin
    let i = i mod String.length s in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end

(* ------------------------------------------------------------ unit: cutter *)

let test_cutter_batch_auth () =
  let registry = registry () in
  let verify tx = Block.verify_tx registry tx in
  let t1 = Block.make_tx ~id:"a" ~identity:client ~contract:"c" ~args:[] in
  let t2 = Block.make_tx ~id:"b" ~identity:client ~contract:"c" ~args:[] in
  (* stale signature: the payload (id) changed under it *)
  let forged = { t2 with Block.tx_id = "f" } in
  let c = Cutter.create ~auth:verify ~block_size:3 () in
  (match Cutter.add c t1 with
  | Cutter.First -> ()
  | _ -> Alcotest.fail "first add");
  (match Cutter.add c forged with
  | Cutter.Buffered -> ()
  | _ -> Alcotest.fail "second add");
  (match Cutter.add c t2 with
  | Cutter.Cut txs ->
      Alcotest.(check (list string))
        "forged tx filtered from the batch" [ "a"; "b" ]
        (List.map (fun tx -> tx.Block.tx_id) txs)
  | _ -> Alcotest.fail "expected a cut");
  Alcotest.(check int) "verified" 2 (Cutter.auth_verified c);
  Alcotest.(check int) "rejected" 1 (Cutter.auth_rejected c);
  (match Cutter.add c t1 with
  | Cutter.Duplicate -> ()
  | _ -> Alcotest.fail "replayed add");
  Alcotest.(check int) "replays" 1 (Cutter.replays c);
  (* an all-forged batch never becomes a block *)
  let c2 = Cutter.create ~auth:verify ~block_size:2 () in
  ignore (Cutter.add c2 { t1 with Block.tx_id = "f1" });
  (match Cutter.add c2 { t2 with Block.tx_id = "f2" } with
  | Cutter.Buffered -> ()
  | _ -> Alcotest.fail "all-forged batch must not cut");
  Alcotest.(check bool) "nothing left to cut" true (Cutter.cut c2 = None);
  Alcotest.(check int) "both rejected" 2 (Cutter.auth_rejected c2)

(* --------------------------------------------------------- unit: admission *)

let test_admission_checks () =
  let node, chain = boot () in
  let h = Node_core.height node in
  let pin, vals = Admission.pin_read node ~table:"kv" ~key:(Value.Int 1) ~height:h in
  Alcotest.(check bool) "pinned read sees the row" true
    (vals = Some [| Value.Int 1; Value.Int 100 |]);
  Alcotest.(check bool) "fresh pin admits" true
    (Admission.check node ~pins:[ pin ] ~pinned_height:h () = Ok ());
  let pin9, v9 =
    Admission.pin_read node ~table:"kv" ~key:(Value.Int 999) ~height:h
  in
  Alcotest.(check bool) "absent row reads None" true (v9 = None);
  (* supersede both pins: bump key 1, insert key 999 *)
  ignore (process node (next_block chain [ bump_tx ~key:1 ~tag:1 ~snapshot:h ]));
  ignore (process node (next_block chain [ put_tx ~key:999 ~v:7 ~snapshot:h ]));
  (match Admission.check node ~pins:[ pin ] ~pinned_height:h () with
  | Error (Admission.Superseded { table = "kv"; _ }) -> ()
  | _ -> Alcotest.fail "updated pin must be superseded");
  (match Admission.check node ~pins:[ pin9 ] ~pinned_height:h () with
  | Error (Admission.Superseded _) -> ()
  | _ -> Alcotest.fail "a row appearing under an absence pin must supersede");
  (* Early Fail Tx (2): height window *)
  (match Admission.check node ~pins:[] ~pinned_height:h ~max_window:1 () with
  | Error (Admission.Expired { age = 2; window = 1 }) -> ()
  | _ -> Alcotest.fail "expired window must fail");
  Alcotest.(check bool) "wide window admits" true
    (Admission.check node ~pins:[] ~pinned_height:h ~max_window:2 () = Ok ());
  (* sys.* views have no versions to pin *)
  (try
     ignore (Admission.lookup node ~table:"sys.blocks" ~key:(Value.Int 1) ~height:h);
     Alcotest.fail "sys.* lookup must raise"
   with Invalid_argument _ -> ())

(* ------------------------------------------- qcheck (a): admission oracle *)

(* A round is a cohort of contended sessions: (hot key, submit delay in
   rounds). Each session pins at its creation round and submits [delay]
   rounds later, after other cohorts' bumps have had a chance to
   supersede its pin. One guaranteed-clean insert per round keeps every
   block non-empty so block heights align between the two runs. *)
let gen_rounds =
  QCheck.Gen.(
    list_size (3 -- 7) (list_size (0 -- 3) (pair (int_bound (keyspace - 1)) (1 -- 3))))

let print_rounds rounds =
  String.concat "|"
    (List.map
       (fun cohort ->
         String.concat ","
           (List.map (fun (k, d) -> Printf.sprintf "k%d+%d" k d) cohort))
       rounds)

let arbitrary_rounds = QCheck.make ~print:print_rounds gen_rounds

type sess = {
  sx_tx : Block.tx;
  sx_pins : Admission.pin list;
  sx_pinned : int;
  sx_due : int;
}

let run_workload ~admission rounds =
  let registry = registry () in
  let node = make_node ~registry "W" in
  let chain = { prev = None } in
  ignore
    (process node
       (next_block chain
          [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]));
  let pending = ref [] in
  let tag = ref 0 in
  let fresh = ref 0 in
  let early = ref [] in
  let statuses = Hashtbl.create 64 in
  let ws = ref [] in
  let n_rounds = List.length rounds in
  for r = 0 to n_rounds + 3 do
    let cohort = if r < n_rounds then List.nth rounds r else [] in
    let h = Node_core.height node in
    List.iter
      (fun (k, d) ->
        incr tag;
        let pin, _ =
          Admission.pin_read node ~table:"kv" ~key:(Value.Int k) ~height:h
        in
        pending :=
          !pending
          @ [
              {
                sx_tx = bump_tx ~key:k ~tag:!tag ~snapshot:h;
                sx_pins = [ pin ];
                sx_pinned = h;
                sx_due = r + d;
              };
            ])
      cohort;
    let due, rest = List.partition (fun s -> s.sx_due <= r) !pending in
    pending := rest;
    let included =
      List.filter
        (fun s ->
          (not admission)
          ||
          match
            Admission.check node ~pins:s.sx_pins ~pinned_height:s.sx_pinned ()
          with
          | Ok () -> true
          | Error _ ->
              early := s.sx_tx.Block.tx_id :: !early;
              false)
        due
    in
    incr fresh;
    let clean = put_tx ~key:(1000 + !fresh) ~v:7 ~snapshot:h in
    let txs = List.map (fun s -> s.sx_tx) included @ [ clean ] in
    let res = process node (next_block chain txs) in
    ws := Brdb_util.Hex.encode res.Node_core.br_write_set_hash :: !ws;
    List.iter
      (fun (id, st) ->
        Hashtbl.replace statuses id
          (match st with Node_core.S_committed -> `Committed | _ -> `Aborted))
      res.Node_core.br_statuses
  done;
  let digest =
    Node_core.state_digest node ~height:(Node_core.height node)
  in
  (List.rev !ws, state_of node, digest, statuses, List.rev !early)

let prop_admission_equivalence =
  QCheck.Test.make
    ~name:"admission on == admission off: state, ws hashes, digests"
    ~count:25 arbitrary_rounds
    (fun rounds ->
      let ws_on, st_on, dg_on, _, early = run_workload ~admission:true rounds in
      let ws_off, st_off, dg_off, statuses_off, _ =
        run_workload ~admission:false rounds
      in
      if ws_on <> ws_off then
        QCheck.Test.fail_report "per-block write-set hashes diverged";
      if st_on <> st_off then QCheck.Test.fail_report "committed state diverged";
      if dg_on <> dg_off then
        QCheck.Test.fail_report "chained state digests diverged";
      List.for_all
        (fun id ->
          match Hashtbl.find_opt statuses_off id with
          | Some `Aborted -> true
          | Some `Committed ->
              QCheck.Test.fail_reportf
                "early-aborted %s committed in the admission-off run" id
          | None ->
              QCheck.Test.fail_reportf
                "early-aborted %s missing from the admission-off run" id)
        early)

(* ------------------------------------- qcheck (b)/(c): proofs and tampers *)

(* One shared chain: 3 blocks of 3 inserts each after setup. *)
let proof_env =
  lazy
    (let node, chain = boot () in
     let ids = ref [] in
     for b = 0 to 2 do
       let txs =
         List.init 3 (fun i ->
             let tx = put_tx ~key:(100 + (b * 3) + i) ~v:b ~snapshot:1 in
             ids := tx.Block.tx_id :: !ids;
             tx)
       in
       ignore (process node (next_block chain txs))
     done;
     (node, Array.of_list (List.rev !ids)))

let gen_tamper = QCheck.Gen.(triple (int_bound 8) (int_bound 5) (int_bound 63))

let arbitrary_tamper =
  QCheck.make
    ~print:(fun (t, s, o) -> Printf.sprintf "tx=%d site=%d ofs=%d" t s o)
    gen_tamper

let prop_receipt_tamper =
  QCheck.Test.make ~name:"receipt round-trips; any single-byte tamper rejected"
    ~count:60 arbitrary_tamper
    (fun (t, site, ofs) ->
      let node, ids = Lazy.force proof_env in
      let tx_id = ids.(t mod Array.length ids) in
      let rc =
        match Proof.build_receipt node ~tx_id with
        | Ok rc -> rc
        | Error e -> QCheck.Test.fail_reportf "build_receipt: %s" e
      in
      let anchor = Proof.tip_hash node in
      if not (Proof.verify_receipt ~tip_hash:anchor rc) then
        QCheck.Test.fail_report "pristine receipt failed verification";
      let rejected =
        match site with
        | 0 ->
            not
              (Proof.verify_receipt ~tip_hash:anchor
                 { rc with Proof.rc_payload = flip_byte rc.Proof.rc_payload ofs })
        | 1 -> (
            let s = flip_byte (Merkle.proof_to_string rc.Proof.rc_proof) ofs in
            match Merkle.proof_of_string s with
            | None -> true (* rejected at parse *)
            | Some p ->
                not
                  (Proof.verify_receipt ~tip_hash:anchor
                     { rc with Proof.rc_proof = p }))
        | 2 ->
            not
              (Proof.verify_receipt ~tip_hash:anchor
                 {
                   rc with
                   Proof.rc_prev_hash = flip_byte rc.Proof.rc_prev_hash ofs;
                 })
        | 3 ->
            not
              (Proof.verify_receipt ~tip_hash:anchor
                 { rc with Proof.rc_metadata = flip_byte rc.Proof.rc_metadata ofs })
        | 4 -> (
            match rc.Proof.rc_chain with
            | [] ->
                (* tx in the tip block: no successor headers to tamper *)
                not
                  (Proof.verify_receipt ~tip_hash:anchor
                     {
                       rc with
                       Proof.rc_payload = flip_byte rc.Proof.rc_payload ofs;
                     })
            | chain ->
                let j = ofs mod List.length chain in
                let chain' =
                  List.mapi
                    (fun i (hd : Proof.header) ->
                      if i = j then
                        { hd with Proof.h_tx_root = flip_byte hd.Proof.h_tx_root ofs }
                      else hd)
                    chain
                in
                not
                  (Proof.verify_receipt ~tip_hash:anchor
                     { rc with Proof.rc_chain = chain' }))
        | _ -> not (Proof.verify_receipt ~tip_hash:(flip_byte anchor ofs) rc)
      in
      if not rejected then QCheck.Test.fail_report "tampered receipt verified";
      true)

let prop_provenance_tamper =
  QCheck.Test.make
    ~name:"provenance round-trips; any single-byte tamper rejected" ~count:60
    arbitrary_tamper
    (fun (t, site, ofs) ->
      let node, _ = Lazy.force proof_env in
      let key = 100 + (t mod 9) in
      let tip = Node_core.height node in
      let v =
        match
          Admission.lookup node ~table:"kv" ~key:(Value.Int key) ~height:tip
        with
        | Some v -> v
        | None -> QCheck.Test.fail_reportf "key %d not visible" key
      in
      let pv =
        match
          Proof.build_provenance node ~height:v.Version.creator_block
            ~matches:
              (Proof.row_write_matches ~table:"kv"
                 ~values:(Array.copy v.Version.values))
        with
        | Ok pv -> pv
        | Error e -> QCheck.Test.fail_reportf "build_provenance: %s" e
      in
      let anchor = Proof.tip_digest node in
      if not (Proof.verify_provenance ~tip_digest:anchor pv) then
        QCheck.Test.fail_report "pristine provenance proof failed verification";
      let rejected =
        match site with
        | 0 ->
            not
              (Proof.verify_provenance ~tip_digest:anchor
                 { pv with Proof.pv_entry = flip_byte pv.Proof.pv_entry ofs })
        | 1 ->
            not
              (Proof.verify_provenance ~tip_digest:anchor
                 { pv with Proof.pv_prefix = flip_byte pv.Proof.pv_prefix ofs })
        | 2 ->
            let j = ofs mod List.length pv.Proof.pv_roots in
            let roots' =
              List.mapi
                (fun i r -> if i = j then flip_byte r ofs else r)
                pv.Proof.pv_roots
            in
            not
              (Proof.verify_provenance ~tip_digest:anchor
                 { pv with Proof.pv_roots = roots' })
        | 3 -> (
            let s = flip_byte (Merkle.proof_to_string pv.Proof.pv_proof) ofs in
            match Merkle.proof_of_string s with
            | None -> true
            | Some p ->
                (* an empty proof serializes to "": flipping is a no-op, so
                   fall back to tampering the entry instead *)
                if s = "" then
                  not
                    (Proof.verify_provenance ~tip_digest:anchor
                       { pv with Proof.pv_entry = flip_byte pv.Proof.pv_entry ofs })
                else
                  not
                    (Proof.verify_provenance ~tip_digest:anchor
                       { pv with Proof.pv_proof = p }))
        | _ -> not (Proof.verify_provenance ~tip_digest:(flip_byte anchor ofs) pv)
      in
      if not rejected then
        QCheck.Test.fail_report "tampered provenance proof verified";
      true)

(* --------------------------------------------- integration: session plane *)

let mk_db () =
  let config =
    {
      (B.default_config ()) with
      B.orgs = [ "org1"; "org2"; "org3" ];
      flow = Node_core.Execute_order;
      block_size = 1;
      block_timeout = 0.05;
      seed = 5;
    }
  in
  let db = B.create config in
  B.install_contract db ~name:"setup" setup_contract;
  B.install_contract db ~name:"bump" bump_contract;
  B.install_contract db ~name:"put" put_contract;
  let adm = B.admin db "org1" in
  ignore (B.submit db ~user:adm ~contract:"setup" ~args:[]);
  B.settle db;
  db

let test_session_lifecycle () =
  let db = mk_db () in
  let hub = Session.create_hub db in
  let alice = B.register_user db "client/alice" in
  let bob = B.register_user db "client/bob" in
  let s1 = Session.begin_ hub ~user:alice in
  let s2 = Session.begin_ hub ~user:bob in
  Alcotest.(check bool) "sessions pin the same tip" true
    (Session.pinned_height s1 = Session.pinned_height s2);
  Alcotest.(check bool) "round-robin peers" true
    (Session.peer_index s1 <> Session.peer_index s2);
  (* both sessions read the same hot row *)
  Alcotest.(check bool) "s1 pinned read" true
    (Session.read s1 ~table:"kv" ~key:(Value.Int 1)
    = Some [| Value.Int 1; Value.Int 100 |]);
  ignore (Session.read s2 ~table:"kv" ~key:(Value.Int 1));
  (* s1 wins the race *)
  let tx1 =
    match Session.submit s1 ~contract:"bump" ~args:[ Value.Int 1 ] with
    | Session.Submitted id -> id
    | Session.Early_abort v ->
        Alcotest.failf "s1 early-aborted: %s" (Admission.violation_to_string v)
  in
  B.settle db;
  Alcotest.(check bool) "s1's bump committed" true
    (B.status db tx1 = Some B.Committed);
  (* s2's pin is now superseded: Early Fail Tx (1), never submitted *)
  (match Session.submit s2 ~contract:"bump" ~args:[ Value.Int 1 ] with
  | Session.Early_abort (Admission.Superseded _) -> ()
  | Session.Early_abort v ->
      Alcotest.failf "wrong violation: %s" (Admission.violation_to_string v)
  | Session.Submitted _ -> Alcotest.fail "doomed tx reached the orderer");
  (* a submitted session is closed *)
  (try
     ignore (Session.read s1 ~table:"kv" ~key:(Value.Int 1));
     Alcotest.fail "read on a closed session must raise"
   with Invalid_argument _ -> ());
  (* receipt for the committed tx, verified against the tip block hash *)
  (match Session.receipt s2 ~tx_id:tx1 with
  | Ok (rc, _anchor) ->
      Alcotest.(check bool) "receipt describes itself" true
        (String.length (Proof.describe_receipt rc) > 0)
  | Error e -> Alcotest.failf "receipt: %s" e);
  (* verified read of the bumped row on a fresh session *)
  let carol = B.register_user db "client/carol" in
  let s3 = Session.begin_ hub ~user:carol in
  (match Session.read_verified s3 ~table:"kv" ~key:(Value.Int 1) with
  | Ok (vals, pv, _anchor) ->
      Alcotest.(check bool) "verified read sees the bump" true
        (vals = [| Value.Int 1; Value.Int 101 |]);
      Alcotest.(check bool) "proof has roots up to the tip" true
        (List.length pv.Proof.pv_roots >= 1)
  | Error e -> Alcotest.failf "read_verified: %s" e);
  (* sys.clients reflects every session *)
  (match B.query db ~node:0 "SELECT session, status FROM sys.clients" with
  | Ok rs ->
      let rows =
        List.map
          (fun row ->
            match row with
            | [| Value.Text s; Value.Text st |] -> (s, st)
            | _ -> Alcotest.fail "bad sys.clients row")
          rs.Brdb_engine.Exec.rows
      in
      Alcotest.(check (list (pair string string)))
        "sys.clients rows"
        [
          ("sess-0001", "submitted");
          ("sess-0002", "early-aborted");
          ("sess-0003", "active");
        ]
        rows
  | Error e -> Alcotest.failf "sys.clients: %s" e);
  (* hub totals and registry metrics agree *)
  let opened, reads, submitted, early, receipts = Session.totals hub in
  Alcotest.(check (list int)) "hub totals" [ 3; 3; 1; 1; 2 ]
    [ opened; reads; submitted; early; receipts ];
  let reg = Obs.metrics (B.obs db) in
  Alcotest.(check int) "admission.early_aborts metric" 1
    (Oreg.counter reg ~node:"client" "admission.early_aborts");
  Alcotest.(check int) "client.sessions metric" 3
    (Oreg.counter reg ~node:"client" "client.sessions")

let test_admission_off_server_aborts () =
  (* The same doomed schedule with admission off: the transaction ships,
     consumes ordering bandwidth, and aborts server-side — establishing
     the baseline the admission plane saves. *)
  let db = mk_db () in
  let hub = Session.create_hub ~admission:false db in
  let alice = B.register_user db "client/alice" in
  let bob = B.register_user db "client/bob" in
  let s1 = Session.begin_ hub ~user:alice in
  let s2 = Session.begin_ hub ~user:bob in
  ignore (Session.read s1 ~table:"kv" ~key:(Value.Int 1));
  ignore (Session.read s2 ~table:"kv" ~key:(Value.Int 1));
  (match Session.submit s1 ~contract:"bump" ~args:[ Value.Int 1 ] with
  | Session.Submitted _ -> B.settle db
  | Session.Early_abort _ -> Alcotest.fail "admission is off");
  match Session.submit s2 ~contract:"bump" ~args:[ Value.Int 1 ] with
  | Session.Early_abort _ -> Alcotest.fail "admission is off"
  | Session.Submitted id -> (
      B.settle db;
      match B.status db id with
      | Some (B.Aborted _) -> ()
      | st ->
          Alcotest.failf "doomed tx should abort server-side, got %s"
            (match st with
            | Some B.Committed -> "committed"
            | Some (B.Rejected r) -> "rejected: " ^ r
            | Some (B.Aborted _) -> assert false
            | None -> "undecided"))

let suites =
  [
    ( "client",
      [
        Alcotest.test_case "cutter batch auth + replay counters" `Quick
          test_cutter_batch_auth;
        Alcotest.test_case "admission checks (Node_core level)" `Quick
          test_admission_checks;
        Alcotest.test_case "session lifecycle over the network" `Quick
          test_session_lifecycle;
        Alcotest.test_case "admission off: doomed tx aborts server-side" `Quick
          test_admission_off_server_aborts;
      ] );
    ( "client.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_admission_equivalence;
          prop_receipt_tamper;
          prop_provenance_tamper;
        ] );
  ]
