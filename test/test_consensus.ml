open Brdb_consensus
module Block = Brdb_ledger.Block
module Clock = Brdb_sim.Clock
module Rng = Brdb_sim.Rng
module Identity = Brdb_crypto.Identity

let mk_tx i =
  let identity = Identity.create "org1/client" in
  Block.make_tx ~id:(Printf.sprintf "tx-%d" i) ~identity ~contract:"noop"
    ~args:[ Brdb_storage.Value.Int i ]

(* --- cutter ---------------------------------------------------------------- *)

let test_cutter_size_cut () =
  let c = Cutter.create ~block_size:3 () in
  Alcotest.(check bool) "first" true (Cutter.add c (mk_tx 1) = Cutter.First);
  Alcotest.(check bool) "buffered" true (Cutter.add c (mk_tx 2) = Cutter.Buffered);
  (match Cutter.add c (mk_tx 3) with
  | Cutter.Cut txs ->
      Alcotest.(check (list string)) "order" [ "tx-1"; "tx-2"; "tx-3" ]
        (List.map (fun t -> t.Block.tx_id) txs)
  | _ -> Alcotest.fail "expected cut");
  Alcotest.(check int) "empty again" 0 (Cutter.pending c)

let test_cutter_duplicates () =
  let c = Cutter.create ~block_size:10 () in
  ignore (Cutter.add c (mk_tx 1));
  Alcotest.(check bool) "dup" true (Cutter.add c (mk_tx 1) = Cutter.Duplicate);
  (match Cutter.cut c with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "expected one tx");
  (* Still duplicate after being cut into a block. *)
  Alcotest.(check bool) "dup across blocks" true (Cutter.add c (mk_tx 1) = Cutter.Duplicate)

let test_cutter_force_cut () =
  let c = Cutter.create ~block_size:10 () in
  Alcotest.(check bool) "empty force" true (Cutter.cut c = None);
  ignore (Cutter.add c (mk_tx 1));
  ignore (Cutter.add c (mk_tx 2));
  let e0 = Cutter.epoch c in
  (match Cutter.cut c with
  | Some txs -> Alcotest.(check int) "two" 2 (List.length txs)
  | None -> Alcotest.fail "expected txs");
  Alcotest.(check bool) "epoch bumped" true (Cutter.epoch c > e0)

(* --- common harness ---------------------------------------------------------- *)

type harness = {
  clock : Clock.t;
  net : Msg.Net.net;
  registry : Identity.Registry.t;
  mutable received : (string * Block.t) list; (* (peer, block), newest first *)
}

let make_harness ?(peers = [ "peer-1" ]) () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:99 in
  let net = Msg.Net.create ~clock ~rng ~default_link:Brdb_sim.Network.lan_link in
  let registry = Identity.Registry.create () in
  let h = { clock; net; registry; received = [] } in
  List.iter
    (fun peer ->
      Msg.Net.register net ~name:peer (fun ~src:_ msg ->
          match msg with
          | Msg.Block_deliver b -> h.received <- (peer, b) :: h.received
          | _ -> ()))
    peers;
  h

let submit h ~dst tx =
  ignore (Msg.Net.send h.net ~src:"client" ~dst ~size_bytes:(Msg.size (Msg.Client_tx tx))
            (Msg.Client_tx tx))

let blocks_for h peer =
  List.rev (List.filter_map (fun (p, b) -> if p = peer then Some b else None) h.received)

(* --- solo ------------------------------------------------------------------- *)

let test_solo_size_and_timeout () =
  let h = make_harness () in
  let identity = Identity.create "ord/solo" in
  (match Identity.Registry.register h.registry identity with Ok () -> () | Error _ -> ());
  let _solo =
    Solo.create ~net:h.net ~name:"orderer-1" ~identity ~block_size:3
      ~block_timeout:1.0 ~peers:[ "peer-1" ] ()
  in
  for i = 1 to 7 do
    submit h ~dst:"orderer-1" (mk_tx i)
  done;
  ignore (Clock.run h.clock);
  let bs = blocks_for h "peer-1" in
  (* 7 txs -> blocks of 3,3 then timeout-cut block of 1 *)
  Alcotest.(check (list int)) "block sizes" [ 3; 3; 1 ]
    (List.map (fun b -> List.length b.Block.txs) bs);
  Alcotest.(check (list int)) "heights" [ 1; 2; 3 ]
    (List.map (fun b -> b.Block.height) bs);
  (* chain verification *)
  let rec chain prev = function
    | [] -> ()
    | b :: rest ->
        Alcotest.(check bool) "chains" true (Block.chains_from b ~prev);
        Alcotest.(check bool) "verifies" true (Block.verify h.registry b);
        chain (Some b) rest
  in
  chain None bs

let test_solo_duplicate_txs_ignored () =
  let h = make_harness () in
  let identity = Identity.create "ord/solo" in
  let _solo =
    Solo.create ~net:h.net ~name:"orderer-1" ~identity ~block_size:100
      ~block_timeout:0.5 ~peers:[ "peer-1" ] ()
  in
  submit h ~dst:"orderer-1" (mk_tx 1);
  submit h ~dst:"orderer-1" (mk_tx 1);
  submit h ~dst:"orderer-1" (mk_tx 2);
  ignore (Clock.run h.clock);
  match blocks_for h "peer-1" with
  | [ b ] -> Alcotest.(check int) "dedup" 2 (List.length b.Block.txs)
  | bs -> Alcotest.failf "expected 1 block, got %d" (List.length bs)

(* --- kafka ------------------------------------------------------------------- *)

let test_kafka_identical_blocks () =
  (* 3 orderers, one peer connected to each; all must see identical chains. *)
  let peers = [ "peer-1"; "peer-2"; "peer-3" ] in
  let h = make_harness ~peers () in
  let orderers = [ "orderer-1"; "orderer-2"; "orderer-3" ] in
  let _cluster =
    Kafka.create_cluster ~net:h.net ~name:"kafka-cluster" ~orderers ()
  in
  let _os =
    List.map2
      (fun name peer ->
        Kafka.create_orderer ~net:h.net ~name ~identity:(Identity.create ("ord/" ^ name))
          ~cluster:"kafka-cluster" ~block_size:4 ~block_timeout:1.0 ~peers:[ peer ] ())
      orderers peers
  in
  (* Clients submit to different orderers. *)
  for i = 1 to 10 do
    submit h ~dst:(List.nth orderers (i mod 3)) (mk_tx i)
  done;
  ignore (Clock.run h.clock);
  let chains = List.map (blocks_for h) peers in
  (match chains with
  | [ c1; c2; c3 ] ->
      let hashes c = List.map (fun b -> Brdb_util.Hex.encode b.Block.hash) c in
      Alcotest.(check (list string)) "1=2" (hashes c1) (hashes c2);
      Alcotest.(check (list string)) "1=3" (hashes c1) (hashes c3);
      Alcotest.(check int) "all txs ordered" 10
        (List.fold_left (fun acc b -> acc + List.length b.Block.txs) 0 c1);
      (* sequence numbers contiguous *)
      Alcotest.(check (list int)) "heights" (List.mapi (fun i _ -> i + 1) c1)
        (List.map (fun b -> b.Block.height) c1)
  | _ -> Alcotest.fail "wrong chain count");
  ()

(* --- raft ---------------------------------------------------------------------- *)

let setup_raft ?(n = 3) h =
  let names = List.init n (fun i -> Printf.sprintf "raft-%d" (i + 1)) in
  let rng = Rng.create ~seed:7 in
  let nodes =
    List.map
      (fun name ->
        Raft.create ~net:h.net ~name ~names ~identity:(Identity.create ("ord/" ^ name))
          ~rng:(Rng.split rng) ~block_size:4 ~block_timeout:0.5
          ~peers:[ "peer-1" ] ())
      names
  in
  (names, nodes)

let find_leader nodes = List.find_opt (fun n -> Raft.role n = Raft.Leader) nodes

let test_raft_elects_leader () =
  let h = make_harness () in
  let _, nodes = setup_raft h in
  ignore (Clock.run ~until:2.0 h.clock);
  (match find_leader nodes with
  | None -> Alcotest.fail "no leader elected"
  | Some leader ->
      Alcotest.(check bool) "term > 0" true (Raft.term leader > 0);
      (* everyone agrees on the leader *)
      List.iter
        (fun n ->
          if Raft.role n <> Raft.Leader then
            Alcotest.(check (option string)) "leader hint"
              (Raft.leader_hint leader) (Raft.leader_hint n))
        nodes)

let test_raft_orders_transactions () =
  let h = make_harness () in
  let names, nodes = setup_raft h in
  ignore (Clock.run ~until:2.0 h.clock);
  (* Submit to a follower: must be forwarded to the leader. *)
  let follower =
    List.nth names
      (match find_leader nodes with
      | Some l when Raft.leader_hint l = Some (List.nth names 0) -> 1
      | _ -> 0)
  in
  for i = 1 to 6 do
    submit h ~dst:follower (mk_tx i)
  done;
  ignore (Clock.run ~until:6.0 h.clock);
  (* peer-1 is connected to all three orderers in this harness; it receives
     each block once per orderer. Group by height and check consistency. *)
  let all = blocks_for h "peer-1" in
  Alcotest.(check bool) "blocks produced" true (List.length all > 0);
  let by_height = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let cur = try Hashtbl.find by_height b.Block.height with Not_found -> [] in
      Hashtbl.replace by_height b.Block.height (b :: cur))
    all;
  Hashtbl.iter
    (fun _h bs ->
      let hashes = List.sort_uniq compare (List.map (fun b -> b.Block.hash) bs) in
      Alcotest.(check int) "identical across orderers" 1 (List.length hashes))
    by_height;
  let total =
    Hashtbl.fold (fun _ bs acc -> acc + List.length (List.hd bs).Block.txs) by_height 0
  in
  Alcotest.(check int) "all six ordered exactly once" 6 total

let test_raft_leader_failover () =
  let h = make_harness () in
  let _, nodes = setup_raft h in
  ignore (Clock.run ~until:2.0 h.clock);
  let leader1 = match find_leader nodes with Some l -> l | None -> Alcotest.fail "no leader" in
  let term1 = Raft.term leader1 in
  Raft.crash leader1;
  ignore (Clock.run ~until:5.0 h.clock);
  let survivors = List.filter (fun n -> not (Raft.is_crashed n)) nodes in
  let leader2 =
    match find_leader survivors with
    | Some l -> l
    | None -> Alcotest.fail "no new leader after crash"
  in
  Alcotest.(check bool) "new leader differs" true (leader2 != leader1);
  Alcotest.(check bool) "term advanced" true (Raft.term leader2 > term1);
  Alcotest.(check bool) "re-election counted" true (Raft.elections leader2 >= 1);
  (* Transactions still get ordered. *)
  let survivor_name = (match Raft.leader_hint leader2 with Some n -> n | None -> "raft-1") in
  for i = 100 to 105 do
    submit h ~dst:survivor_name (mk_tx i)
  done;
  ignore (Clock.run ~until:10.0 h.clock);
  Alcotest.(check bool) "committed after failover" true (Raft.commit_index leader2 > 0);
  (* Old leader restarts and catches up. *)
  Raft.restart leader1;
  ignore (Clock.run ~until:15.0 h.clock);
  Alcotest.(check int) "log caught up" (Raft.log_length leader2) (Raft.log_length leader1)

(* --- bft --------------------------------------------------------------------- *)

let setup_bft ?view_timeout ?(all_peered = false) h ~n =
  let names = List.init n (fun i -> Printf.sprintf "bft-%d" (i + 1)) in
  List.map
    (fun name ->
      Bft.create ~net:h.net ~name ~names ~identity:(Identity.create ("ord/" ^ name))
        ~block_size:4 ~block_timeout:0.5 ?view_timeout
        ~peers:(if all_peered || name = List.hd names then [ "peer-1" ] else [])
        ())
    names

(* With every replica delivering to peer-1, group the copies by height:
   each height must carry exactly one distinct block. *)
let unique_blocks_for h peer =
  let by_height = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let cur = try Hashtbl.find by_height b.Block.height with Not_found -> [] in
      Hashtbl.replace by_height b.Block.height (b :: cur))
    (blocks_for h peer);
  Hashtbl.fold
    (fun height bs acc ->
      let hashes = List.sort_uniq compare (List.map (fun b -> b.Block.hash) bs) in
      Alcotest.(check int)
        (Printf.sprintf "height %d: one block" height)
        1 (List.length hashes);
      (height, List.hd bs) :: acc)
    by_height []
  |> List.sort compare |> List.map snd

let test_bft_delivers_blocks () =
  let h = make_harness () in
  let nodes = setup_bft h ~n:4 in
  Alcotest.(check bool) "first is leader" true (Bft.is_leader (List.hd nodes));
  for i = 1 to 9 do
    (* submit to random replicas; they relay to the leader *)
    submit h ~dst:(Printf.sprintf "bft-%d" ((i mod 4) + 1)) (mk_tx i)
  done;
  ignore (Clock.run ~until:10.0 h.clock);
  let bs = blocks_for h "peer-1" in
  Alcotest.(check int) "all txs delivered" 9
    (List.fold_left (fun acc b -> acc + List.length b.Block.txs) 0 bs);
  Alcotest.(check (list int)) "in order" (List.mapi (fun i _ -> i + 1) bs)
    (List.map (fun b -> b.Block.height) bs);
  (* every replica committed every block *)
  List.iter
    (fun node ->
      Alcotest.(check int) "replica delivered" (List.length bs) (Bft.blocks_delivered node))
    nodes

let test_bft_view_change_timeout_boundary () =
  (* The watchdog is exact: with [view_timeout = 1.0] and the primary dead
     from the start, no replica votes before the deadline and all of them
     vote right after it. *)
  let h = make_harness () in
  let nodes = setup_bft ~view_timeout:1.0 ~all_peered:true h ~n:4 in
  let survivors = List.tl nodes in
  Bft.crash (List.hd nodes);
  for i = 1 to 4 do
    submit h ~dst:(Printf.sprintf "bft-%d" ((i mod 3) + 2)) (mk_tx i)
  done;
  ignore (Clock.run ~until:0.95 h.clock);
  List.iter
    (fun node ->
      Alcotest.(check int) "still view 0 before the deadline" 0 (Bft.view node);
      Alcotest.(check int) "no view change yet" 0 (Bft.view_changes node))
    survivors;
  Alcotest.(check int) "nothing delivered without a primary" 0
    (List.length (blocks_for h "peer-1"));
  ignore (Clock.run ~until:4.0 h.clock);
  List.iter
    (fun node ->
      Alcotest.(check bool) "entered a view change" true (Bft.view_changes node >= 1);
      Alcotest.(check bool) "view advanced" true (Bft.view node >= 1);
      Alcotest.(check string) "agree on the new primary" "bft-2" (Bft.primary node))
    survivors;
  let bs = unique_blocks_for h "peer-1" in
  Alcotest.(check int) "stashed backlog re-proposed and delivered" 4
    (List.fold_left (fun acc b -> acc + List.length b.Block.txs) 0 bs)

let test_bft_primary_crash_failover () =
  (* Crash the primary mid-stream: the default watchdog (4x block timeout)
     deposes it, bft-2 takes over, and cutting resumes where it left off;
     the restarted old primary re-adopts the new view from live traffic. *)
  let h = make_harness () in
  let nodes = setup_bft ~all_peered:true h ~n:4 in
  let old_primary = List.hd nodes in
  let survivors = List.tl nodes in
  for i = 1 to 4 do
    submit h ~dst:"bft-1" (mk_tx i)
  done;
  ignore (Clock.run ~until:1.0 h.clock);
  Alcotest.(check int) "block 1 delivered under the initial primary" 1
    (List.length (unique_blocks_for h "peer-1"));
  Bft.crash old_primary;
  for i = 5 to 8 do
    submit h ~dst:(Printf.sprintf "bft-%d" ((i mod 3) + 2)) (mk_tx i)
  done;
  ignore (Clock.run ~until:10.0 h.clock);
  List.iter
    (fun node ->
      Alcotest.(check bool) "view change entered" true (Bft.view_changes node >= 1);
      Alcotest.(check string) "bft-2 is the new primary" "bft-2" (Bft.primary node))
    survivors;
  let bs = unique_blocks_for h "peer-1" in
  Alcotest.(check (list int)) "heights resume sequentially" [ 1; 2 ]
    (List.map (fun b -> b.Block.height) bs);
  Alcotest.(check int) "all eight txs ordered exactly once" 8
    (List.fold_left (fun acc b -> acc + List.length b.Block.txs) 0 bs);
  (* the deposed primary rejoins and adopts the new view from traffic *)
  Bft.restart old_primary;
  for i = 9 to 12 do
    submit h ~dst:"bft-3" (mk_tx i)
  done;
  ignore (Clock.run ~until:20.0 h.clock);
  Alcotest.(check bool) "restarted replica adopted the new view" true
    (Bft.view old_primary >= 1);
  Alcotest.(check int) "cutting continues in the new view" 3
    (List.length (unique_blocks_for h "peer-1"))

let test_bft_throughput_degrades_with_scale () =
  (* The Fig 8(b) mechanism: more orderers => more leader work per block. *)
  let run n =
    let h = make_harness () in
    let _nodes = setup_bft h ~n in
    for i = 1 to 200 do
      submit h ~dst:"bft-1" (mk_tx i)
    done;
    ignore (Clock.run ~until:60.0 h.clock);
    let bs = blocks_for h "peer-1" in
    let last_time = Clock.now h.clock in
    ignore last_time;
    List.length bs
  in
  let b4 = run 4 and b16 = run 16 in
  (* Same workload and simulated horizon: fewer blocks complete per unit
     time at larger scale is not directly observable here since we run to
     quiescence; instead both must deliver all 200 txs. The latency-based
     degradation is asserted in the bench harness; here we check safety. *)
  Alcotest.(check int) "n=4 delivers all" 50 b4;
  Alcotest.(check int) "n=16 delivers all" 50 b16

let suites =
  [
    ( "consensus.cutter",
      [
        Alcotest.test_case "size cut" `Quick test_cutter_size_cut;
        Alcotest.test_case "duplicates" `Quick test_cutter_duplicates;
        Alcotest.test_case "force cut" `Quick test_cutter_force_cut;
      ] );
    ( "consensus.solo",
      [
        Alcotest.test_case "size and timeout cuts" `Quick test_solo_size_and_timeout;
        Alcotest.test_case "duplicates ignored" `Quick test_solo_duplicate_txs_ignored;
      ] );
    ( "consensus.kafka",
      [ Alcotest.test_case "identical blocks across orderers" `Quick test_kafka_identical_blocks ] );
    ( "consensus.raft",
      [
        Alcotest.test_case "elects a leader" `Quick test_raft_elects_leader;
        Alcotest.test_case "orders transactions" `Quick test_raft_orders_transactions;
        Alcotest.test_case "leader failover" `Quick test_raft_leader_failover;
      ] );
    ( "consensus.bft",
      [
        Alcotest.test_case "delivers blocks" `Quick test_bft_delivers_blocks;
        Alcotest.test_case "view change timeout boundary" `Quick
          test_bft_view_change_timeout_boundary;
        Alcotest.test_case "primary crash failover" `Quick
          test_bft_primary_crash_failover;
        Alcotest.test_case "safety at scale" `Quick test_bft_throughput_degrades_with_scale;
      ] );
  ]
