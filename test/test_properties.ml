(** End-to-end property tests for the paper's core claims:

    1. {b Serializability}: whatever subset of a block's transactions the
       node commits, there is a serial order — a topological order of the
       committed transactions' rw-dependency graph — whose one-at-a-time
       replay on a fresh node reproduces the same final state. (The serial
       order need not be the block order: rw antidependencies may point
       against the commit order; SSI only guarantees acyclicity.) A cycle
       among committed transactions fails the test outright.

    2. {b Cross-node determinism}: independent nodes processing the same
       blocks reach identical commit decisions and identical write-set
       hashes — under contended workloads and in both flows.

    Transactions are random read-compute-write programs over a tiny,
    hot keyspace to maximize conflicts. *)

open Brdb_node
module Block = Brdb_ledger.Block
module Identity = Brdb_crypto.Identity
module Value = Brdb_storage.Value
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api

let keyspace = 5

(* A transaction: read [r1] and [r2], then add a value derived from the
   reads to key [w]. The write depends on the reads, so any missed rw
   anomaly shows up in the final state. *)
type op = { r1 : int; r2 : int; w : int; delta : int }

let op_args o = [ Value.Int o.r1; Value.Int o.r2; Value.Int o.w; Value.Int o.delta ]

let rw_contract =
  Registry.Native
    (fun ctx ->
      let read k =
        Api.set_local ctx "k" (Value.Int k);
        match Api.query1 ctx "SELECT v FROM kv WHERE k = :k" with
        | Some (Value.Int v) -> v
        | _ -> Api.fail "missing key"
      in
      let a = read (Api.arg_int ctx 1) in
      let b = read (Api.arg_int ctx 2) in
      let delta = Api.arg_int ctx 4 in
      Api.set_local ctx "w" (Value.Int (Api.arg_int ctx 3));
      Api.set_local ctx "nv" (Value.Int (delta + ((a + (2 * b)) mod 7)));
      ignore (Api.execute ctx "UPDATE kv SET v = v + :nv WHERE k = :w"))

let setup_contract =
  Registry.Native
    (fun ctx ->
      ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)");
      for k = 0 to keyspace - 1 do
        Api.set_local ctx "k" (Value.Int k);
        ignore (Api.execute ctx "INSERT INTO kv VALUES (:k, 100)")
      done)

(* ----------------------------------------------------------- infrastructure *)

let orderer = Identity.create "orderer/prop"

let client = Identity.create "org1/prop"

let admin = Identity.create "org1/admin"

let registry () =
  let r = Identity.Registry.create () in
  List.iter
    (fun id ->
      match Identity.Registry.register r id with Ok () -> () | Error _ -> assert false)
    [ orderer; client; admin ];
  r

let make_node ?(parallel = false) ~flow ~registry name =
  let node =
    Node_core.create
      (Node_core.make_config ~name ~org:"org1" ~flow
         ~parallel_validation:parallel ~orgs:[ "org1" ] ())
      ~registry
  in
  Node_core.bootstrap node;
  Node_core.install_contract node ~name:"setup" setup_contract;
  Node_core.install_contract node ~name:"rw" rw_contract;
  node

type chain = { mutable prev : Block.t option }

let next_block chain txs =
  let height = (match chain.prev with None -> 0 | Some b -> b.Block.height) + 1 in
  let prev_hash = match chain.prev with None -> Block.genesis_hash | Some b -> b.Block.hash in
  let b = Block.sign (Block.create ~height ~txs ~metadata:"p" ~prev_hash) orderer in
  chain.prev <- Some b;
  b

let process node block =
  match Node_core.process_block node block with
  | Ok r -> r
  | Error e -> QCheck.Test.fail_reportf "process_block: %s" e

let init_node node chain_tx =
  let r = process node chain_tx in
  match r.Node_core.br_statuses with
  | [ (_, Node_core.S_committed) ] -> ()
  | _ -> QCheck.Test.fail_report "setup tx failed"

let state_of node =
  match Node_core.query node "SELECT k, v FROM kv ORDER BY k" with
  | Ok rs ->
      List.map
        (fun row -> Array.to_list (Array.map Value.to_string row))
        rs.Brdb_engine.Exec.rows
  | Error e -> QCheck.Test.fail_reportf "query: %s" e

(* ------------------------------------------------------------- generators *)

let gen_op =
  QCheck.Gen.(
    map
      (fun (r1, r2, w, delta) -> { r1; r2; w; delta })
      (quad (int_bound (keyspace - 1)) (int_bound (keyspace - 1))
         (int_bound (keyspace - 1)) (int_bound 9)))

let gen_ops = QCheck.Gen.(list_size (2 -- 12) gen_op)

let print_ops ops =
  String.concat ";"
    (List.map (fun o -> Printf.sprintf "r%d,r%d->w%d+%d" o.r1 o.r2 o.w o.delta) ops)

let arbitrary_ops = QCheck.make ~print:print_ops gen_ops

(* One OE tx per op, unique ids derived from position. *)
let txs_of_ops ops =
  List.mapi
    (fun i o ->
      Block.make_tx ~id:(Printf.sprintf "p-%d" i) ~identity:client ~contract:"rw"
        ~args:(op_args o))
    ops


(* Serial-equivalence order for a committed subset: A must precede B when
   A read a key that B wrote (rw antidependency; same-snapshot execution
   means nobody reads anybody's in-block writes; two committed
   transactions never write the same key within a block thanks to
   first-committer-wins). Deterministic Kahn toposort, lowest block
   position first; a cycle means SSI committed a non-serializable set. *)
let reads_of o = [ o.r1; o.r2; o.w ]

let must_precede (ai, a) (bi, b) = ai <> bi && List.mem b.w (reads_of a)

let topo_order (committed : (int * op) list) =
  let rec loop remaining acc =
    match remaining with
    | [] -> Some (List.rev acc)
    | _ -> (
        let ready =
          List.filter
            (fun b -> not (List.exists (fun a -> must_precede a b) remaining))
            remaining
        in
        match ready with
        | [] -> None (* cycle *)
        | ((bi, _) as b) :: _ ->
            loop (List.filter (fun (ai, _) -> ai <> bi) remaining) (b :: acc))
  in
  loop committed []

(* -------------------------------------------------------------- properties *)

let prop_oe_block_is_serializable =
  QCheck.Test.make ~name:"OE: committed subset == serial replay" ~count:60
    arbitrary_ops
    (fun ops ->
      let registry = registry () in
      (* Node A processes all ops in ONE block. *)
      let node_a = make_node ~flow:Node_core.Order_execute ~registry "A" in
      let chain_a = { prev = None } in
      init_node node_a
        (next_block chain_a
           [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]);
      let txs = txs_of_ops ops in
      let result = process node_a (next_block chain_a txs) in
      let committed_ids =
        List.filter_map
          (fun (id, s) -> if s = Node_core.S_committed then Some id else None)
          result.Node_core.br_statuses
      in
      let committed_ops =
        List.mapi (fun i o -> (i, o)) ops
        |> List.filter (fun (i, _) -> List.mem (Printf.sprintf "p-%d" i) committed_ids)
      in
      (match topo_order committed_ops with
      | None -> QCheck.Test.fail_report "committed set has a dependency cycle"
      | Some order ->
          (* Node B replays the committed transactions serially in the
             dependency order. *)
          let node_b = make_node ~flow:Node_core.Order_execute ~registry "B" in
          let chain_b = { prev = None } in
          init_node node_b
            (next_block chain_b
               [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]);
          List.iter
            (fun (i, o) ->
              let tx =
                Block.make_tx ~id:(Printf.sprintf "p-%d" i) ~identity:client
                  ~contract:"rw" ~args:(op_args o)
              in
              let r = process node_b (next_block chain_b [ tx ]) in
              match r.Node_core.br_statuses with
              | [ (_, Node_core.S_committed) ] -> ()
              | [ (_, s) ] ->
                  QCheck.Test.fail_reportf "serial replay of committed tx failed: %s"
                    (Node_core.tx_status_to_string s)
              | _ -> QCheck.Test.fail_report "bad replay result")
            order;
          if state_of node_a <> state_of node_b then
            QCheck.Test.fail_report "state differs from serial replay");
      true)

let prop_oe_nodes_identical =
  QCheck.Test.make ~name:"OE: independent nodes agree bit-for-bit" ~count:60
    arbitrary_ops
    (fun ops ->
      let registry = registry () in
      let nodes = List.map (make_node ~flow:Node_core.Order_execute ~registry) [ "A"; "B"; "C" ] in
      let chain = { prev = None } in
      let setup_block =
        next_block chain
          [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]
      in
      List.iter (fun n -> init_node n setup_block) nodes;
      (* split ops across two blocks to exercise cross-block state *)
      let n = List.length ops in
      let txs = txs_of_ops ops in
      let rec split i = function
        | [] -> ([], [])
        | x :: rest ->
            let a, b = split (i + 1) rest in
            if i < n / 2 then (x :: a, b) else (a, x :: b)
      in
      let first, second = split 0 txs in
      (* build blocks in order: @ evaluates right-to-left in OCaml *)
      let b1 = if first = [] then [] else [ next_block chain first ] in
      let b2 = if second = [] then [] else [ next_block chain second ] in
      let blocks = b1 @ b2 in
      let results = List.map (fun node -> List.map (process node) blocks) nodes in
      match results with
      | [] -> true
      | first_results :: rest ->
          List.for_all
            (fun rs ->
              List.for_all2
                (fun (a : Node_core.block_result) (b : Node_core.block_result) ->
                  a.Node_core.br_write_set_hash = b.Node_core.br_write_set_hash
                  && List.map
                       (fun (_, s) -> match s with Node_core.S_committed -> true | _ -> false)
                       a.Node_core.br_statuses
                     = List.map
                         (fun (_, s) ->
                           match s with Node_core.S_committed -> true | _ -> false)
                         b.Node_core.br_statuses)
                first_results rs)
            rest
          && List.for_all
               (fun node -> state_of node = state_of (List.hd nodes))
               nodes)

let prop_eo_serializable_with_pre_execution =
  QCheck.Test.make ~name:"EO: pre-executed contended txns stay serializable" ~count:40
    arbitrary_ops
    (fun ops ->
      let registry = registry () in
      let node = make_node ~flow:Node_core.Execute_order ~registry "A" in
      let chain = { prev = None } in
      init_node node
        (next_block chain
           [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]);
      (* All ops pre-execute at snapshot 1 (maximum contention), then land
         in separate consecutive blocks. *)
      let txs =
        List.map
          (fun o -> Block.make_eo_tx ~identity:client ~contract:"rw" ~args:(op_args o) ~snapshot:1)
          ops
      in
      (* EO ids are content hashes: drop duplicate submissions. *)
      let txs =
        List.fold_left
          (fun acc tx -> if List.exists (fun t -> t.Block.tx_id = tx.Block.tx_id) acc then acc else tx :: acc)
          [] txs
        |> List.rev
      in
      List.iter (fun tx -> ignore (Node_core.pre_execute node tx)) txs;
      let committed = ref [] in
      List.iter
        (fun tx ->
          let r = process node (next_block chain [ tx ]) in
          match r.Node_core.br_statuses with
          | [ (id, Node_core.S_committed) ] -> committed := id :: !committed
          | _ -> ())
        txs;
      (* All committed transactions executed at snapshot 1 and survived the
         stale/phantom checks, so their reads are untouched initial values:
         the rw-dependency toposort is again a valid serial order. *)
      let committed_ops =
        List.mapi (fun i tx -> (i, tx)) txs
        |> List.filter (fun (_, tx) -> List.mem tx.Block.tx_id !committed)
        |> List.map (fun (i, tx) ->
               let o =
                 match tx.Block.tx_args with
                 | [ Value.Int r1; Value.Int r2; Value.Int w; Value.Int delta ] ->
                     { r1; r2; w; delta }
                 | _ -> QCheck.Test.fail_report "bad args"
               in
               (i, o))
      in
      (match topo_order committed_ops with
      | None -> QCheck.Test.fail_report "committed set has a dependency cycle"
      | Some order ->
          let node_b = make_node ~flow:Node_core.Order_execute ~registry "B" in
          let chain_b = { prev = None } in
          init_node node_b
            (next_block chain_b
               [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]);
          List.iter
            (fun (i, o) ->
              let replay =
                Block.make_tx ~id:(Printf.sprintf "replay-%d" i) ~identity:client
                  ~contract:"rw" ~args:(op_args o)
              in
              let r = process node_b (next_block chain_b [ replay ]) in
              match r.Node_core.br_statuses with
              | [ (_, Node_core.S_committed) ] -> ()
              | _ -> QCheck.Test.fail_report "replay failed")
            order;
          if state_of node <> state_of node_b then
            QCheck.Test.fail_report "EO state differs from serial replay");
      true)

(* ---------------------------------- parallel validation oracle (ISSUE 8) *)

(* The wave-scheduled validator must be observationally identical to the
   serial path: same commit/abort decisions, same write-set hashes, same
   chained state digests, same final state — and two parallel nodes must
   agree on the wave partition itself (a pure function of the block). *)

let decisions (r : Node_core.block_result) =
  List.map
    (fun (_, s) -> match s with Node_core.S_committed -> true | _ -> false)
    r.Node_core.br_statuses

(* Process blocks strictly in order (heights must be sequential). *)
let run_all node blocks =
  List.rev (List.fold_left (fun acc b -> process node b :: acc) [] blocks)

let rec chunk size = function
  | [] -> []
  | l ->
      let rec take i = function
        | x :: rest when i < size ->
            let a, b = take (i + 1) rest in
            (x :: a, b)
        | rest -> ([], rest)
      in
      let a, b = take 0 l in
      a :: chunk size b

let check_equivalent ~serial ~parallel rs rp =
  List.iter2
    (fun (a : Node_core.block_result) (b : Node_core.block_result) ->
      let h = a.Node_core.br_height in
      if decisions a <> decisions b then
        QCheck.Test.fail_reportf "decisions diverge at height %d" h;
      if a.Node_core.br_write_set_hash <> b.Node_core.br_write_set_hash then
        QCheck.Test.fail_reportf "write-set hash diverges at height %d" h;
      if
        Node_core.state_digest serial ~height:h
        <> Node_core.state_digest parallel ~height:h
      then QCheck.Test.fail_reportf "state digest diverges at height %d" h)
    rs rp;
  if state_of serial <> state_of parallel then
    QCheck.Test.fail_report "final state diverges"

let prop_parallel_equals_serial_oe =
  QCheck.Test.make
    ~name:"parallel == serial: OE decisions, hashes, digests, waves" ~count:20
    arbitrary_ops
    (fun ops ->
      let registry = registry () in
      let s = make_node ~flow:Node_core.Order_execute ~registry "S" in
      let p =
        make_node ~parallel:true ~flow:Node_core.Order_execute ~registry "P"
      in
      let p2 =
        make_node ~parallel:true ~flow:Node_core.Order_execute ~registry "P2"
      in
      let chain = { prev = None } in
      let setup_block =
        next_block chain
          [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]
      in
      List.iter (fun n -> init_node n setup_block) [ s; p; p2 ];
      (* contended ops land 4 to a block so multi-wave schedules appear *)
      let blocks =
        List.rev
          (List.fold_left
             (fun acc c -> next_block chain c :: acc)
             []
             (chunk 4 (txs_of_ops ops)))
      in
      let rs = run_all s blocks in
      let rp = run_all p blocks in
      let rp2 = run_all p2 blocks in
      check_equivalent ~serial:s ~parallel:p rs rp;
      List.iter2
        (fun (a : Node_core.block_result) (b : Node_core.block_result) ->
          if a.Node_core.br_waves <> b.Node_core.br_waves then
            QCheck.Test.fail_reportf "wave partition diverges at height %d"
              a.Node_core.br_height)
        rp rp2;
      state_of p = state_of p2)

let prop_parallel_equals_serial_eo =
  QCheck.Test.make ~name:"parallel == serial: EO pre-executed contention"
    ~count:12 arbitrary_ops
    (fun ops ->
      let registry = registry () in
      let s = make_node ~flow:Node_core.Execute_order ~registry "S" in
      let p =
        make_node ~parallel:true ~flow:Node_core.Execute_order ~registry "P"
      in
      let chain = { prev = None } in
      let setup_block =
        next_block chain
          [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]
      in
      List.iter (fun n -> init_node n setup_block) [ s; p ];
      (* all ops pre-execute at snapshot 1 (maximum contention) on both
         nodes, then land 3 to a block *)
      let txs =
        List.map
          (fun o ->
            Block.make_eo_tx ~identity:client ~contract:"rw" ~args:(op_args o)
              ~snapshot:1)
          ops
      in
      let txs =
        List.fold_left
          (fun acc tx ->
            if List.exists (fun t -> t.Block.tx_id = tx.Block.tx_id) acc then acc
            else tx :: acc)
          [] txs
        |> List.rev
      in
      List.iter
        (fun tx ->
          ignore (Node_core.pre_execute s tx);
          ignore (Node_core.pre_execute p tx))
        txs;
      let blocks =
        List.rev
          (List.fold_left
             (fun acc c -> next_block chain c :: acc)
             [] (chunk 3 txs))
      in
      let rs = run_all s blocks in
      let rp = run_all p blocks in
      check_equivalent ~serial:s ~parallel:p rs rp;
      true)

let prop_chaos_parallel_validation =
  (* The wave scheduler under the full chaos harness — crashes (including
     mid-block crash points, which recover on the serial path), healing
     partitions, loss and duplication — must preserve every convergence
     invariant of the serial-mode chaos properties above. *)
  QCheck.Test.make ~name:"chaos: parallel validation preserves convergence"
    ~count:3
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999))
    (fun seed ->
      let spec =
        {
          Brdb_core.Chaos.default_spec with
          Brdb_core.Chaos.seed = seed + 23;
          parallel_validation = true;
          rate = 120.;
          duration = 0.7;
          block_size = 8;
          drop = 0.01 +. (0.008 *. float_of_int (seed mod 7));
          duplicate = float_of_int (seed mod 3) /. 100.;
          crashes = (seed mod 2) + 1;
          partitions = seed mod 2;
          crash_points = seed mod 2 = 1;
        }
      in
      let r = Brdb_core.Chaos.run spec in
      if r.Brdb_core.Chaos.decision_mismatches <> [] then
        QCheck.Test.fail_reportf "seed %d: cross-node decision mismatch on %s"
          seed
          (String.concat ", " r.Brdb_core.Chaos.decision_mismatches);
      if not r.Brdb_core.Chaos.converged then
        QCheck.Test.fail_reportf "seed %d diverged: %a" seed
          Brdb_core.Chaos.pp_report r;
      true)

let prop_prune_preserves_live_state =
  QCheck.Test.make ~name:"prune preserves live state (only history shrinks)" ~count:40
    arbitrary_ops
    (fun ops ->
      let registry = registry () in
      let node = make_node ~flow:Node_core.Order_execute ~registry "A" in
      let chain = { prev = None } in
      init_node node
        (next_block chain
           [ Block.make_tx ~id:"setup" ~identity:admin ~contract:"setup" ~args:[] ]);
      (* one block per op for plenty of superseded versions *)
      List.iteri
        (fun i o ->
          ignore
            (process node
               (next_block chain
                  [
                    Block.make_tx ~id:(Printf.sprintf "p-%d" i) ~identity:client
                      ~contract:"rw" ~args:(op_args o);
                  ])))
        ops;
      let before = state_of node in
      let removed = Node_core.prune node ~before:(Node_core.height node) () in
      let after = state_of node in
      ignore removed;
      before = after)

let prop_chaos_schedules_preserve_determinism =
  (* Any seeded fault schedule — random crashes (clean or mid-block),
     healing partitions, up to 10% loss plus duplication — must leave all
     nodes on identical chains with identical per-block write-set hashes,
     and every client request decided (the ISSUE's chaos invariants). *)
  QCheck.Test.make ~name:"chaos: random fault schedules keep nodes identical"
    ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999))
    (fun seed ->
      let spec =
        {
          Brdb_core.Chaos.default_spec with
          Brdb_core.Chaos.seed;
          rate = 100.;
          duration = 0.8;
          block_size = 8;
          drop = 0.01 +. (0.009 *. float_of_int (seed mod 11));
          duplicate = float_of_int (seed mod 3) /. 100.;
          crashes = (seed mod 2) + 1;
          partitions = seed mod 2;
          crash_points = seed mod 3 = 0;
        }
      in
      let r = Brdb_core.Chaos.run spec in
      if not r.Brdb_core.Chaos.converged then
        QCheck.Test.fail_reportf "seed %d diverged: %a" seed
          Brdb_core.Chaos.pp_report r;
      true)

let prop_chaos_decisions_agree_even_when_reasons_diverge =
  (* The CLAUDE.md gotcha as a property: under chaos, the *reason* a
     transaction aborted may legally differ across nodes (rw-conflict on
     one node can surface as a stale read on another), but the
     commit/abort *decision* and the write-set hashes never may. The
     harness records both; reason divergences are tolerated, decision
     mismatches fail the property. *)
  QCheck.Test.make
    ~name:"chaos: abort reasons may diverge, decisions and hashes never"
    ~count:5
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999))
    (fun seed ->
      let spec =
        {
          Brdb_core.Chaos.default_spec with
          Brdb_core.Chaos.seed = seed + 17;
          rate = 120.;
          duration = 0.7;
          block_size = 6;
          drop = 0.02 +. (0.008 *. float_of_int (seed mod 7));
          duplicate = float_of_int (seed mod 4) /. 100.;
          crashes = (seed mod 2) + 1;
          partitions = (seed + 1) mod 2;
          crash_points = seed mod 2 = 0;
        }
      in
      let r = Brdb_core.Chaos.run spec in
      if r.Brdb_core.Chaos.decision_mismatches <> [] then
        QCheck.Test.fail_reportf
          "seed %d: cross-node decision mismatch on %s" seed
          (String.concat ", " r.Brdb_core.Chaos.decision_mismatches);
      if not r.Brdb_core.Chaos.converged then
        QCheck.Test.fail_reportf "seed %d diverged: %a" seed
          Brdb_core.Chaos.pp_report r;
      (* reason_divergences is deliberately unconstrained: non-empty is
         legal and expected under contention. *)
      true)

let prop_bft_converges_with_f_crashed =
  (* The §4.4 byzantine bound as a property: with n = 3f+1 = 4 BFT
     orderers and f = 1 of them (the current primary) crashed mid-run
     under random seeds, the cluster must still converge — the survivors
     vote the primary out and resume cutting. *)
  QCheck.Test.make ~name:"chaos: n=3f+1 BFT orderers converge with f crashed"
    ~count:3
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999))
    (fun seed ->
      let spec =
        {
          Brdb_core.Chaos.default_spec with
          Brdb_core.Chaos.seed;
          ordering = Brdb_consensus.Service.Bft;
          n_orderers = 4;
          orderer_crashes = 1;
          rate = 60.;
          duration = 1.5;
          drop = float_of_int (seed mod 3) /. 100.;
          duplicate = 0.;
          crashes = 0;
          partitions = 0;
        }
      in
      let r = Brdb_core.Chaos.run spec in
      if not r.Brdb_core.Chaos.converged then
        QCheck.Test.fail_reportf "seed %d diverged: %a" seed
          Brdb_core.Chaos.pp_report r;
      if r.Brdb_core.Chaos.view_changes < 1 then
        QCheck.Test.fail_reportf
          "seed %d: primary crashed but no view change was entered" seed;
      true)

(* --------------------------------------------- executor fast-path oracle *)

(* The hash join / hash aggregation / top-k fast paths claim to be
   observationally identical to the seed nested-loop/sort executor
   ([hash_ops = false], kept alive exactly as this oracle). Random tiny
   tables over a hot value domain (lots of join matches, duplicate group
   keys, NULLs); every query runs under both modes. *)

module Exec = Brdb_engine.Exec
module Manager = Brdb_txn.Manager
module Catalog = Brdb_storage.Catalog

let oracle_mode = { Exec.default_mode with Exec.hash_ops = false }

(* Fresh single-node catalog: t1(a pk, b, c) and t2(d pk, e) with b/e drawn
   from a small domain; b and e are NULL when negative. Returns a runner
   that executes one auto-committed statement. *)
let ab_fixture rows1 rows2 =
  let catalog = Catalog.create () in
  let mgr = Manager.create catalog in
  let height = ref 0 in
  let n = ref 0 in
  let run ?mode sql =
    incr n;
    let txn =
      match
        Manager.begin_txn mgr
          ~global_id:(Printf.sprintf "ab-%d" !n)
          ~client:"prop" ~snapshot_height:!height ()
      with
      | Ok t -> t
      | Error `Duplicate_txid -> assert false
    in
    match Exec.execute_sql catalog txn ?mode sql with
    | Ok rs ->
        incr height;
        Brdb_txn.Manager.commit mgr txn ~height:!height;
        rs
    | Error e -> QCheck.Test.fail_reportf "%s: %s" sql (Exec.error_to_string e)
  in
  let lit v = if v < 0 then "NULL" else string_of_int v in
  ignore (run "CREATE TABLE t1 (a INT PRIMARY KEY, b INT, c INT)");
  ignore (run "CREATE TABLE t2 (d INT PRIMARY KEY, e INT)");
  List.iteri
    (fun i (b, c) ->
      ignore (run (Printf.sprintf "INSERT INTO t1 VALUES (%d, %s, %d)" i (lit b) c)))
    rows1;
  List.iteri
    (fun i e ->
      ignore (run (Printf.sprintf "INSERT INTO t2 VALUES (%d, %s)" i (lit e))))
    rows2;
  run

let multiset (rs : Exec.result_set) =
  List.sort
    (List.compare Value.compare_total)
    (List.map Array.to_list rs.Exec.rows)

let gen_tables =
  QCheck.Gen.(
    pair
      (list_size (0 -- 20) (pair (-1 -- 5) (int_bound 9)))
      (list_size (0 -- 12) (-1 -- 6)))

let print_tables (r1, r2) =
  Printf.sprintf "t1=[%s] t2=[%s]"
    (String.concat ";" (List.map (fun (b, c) -> Printf.sprintf "%d,%d" b c) r1))
    (String.concat ";" (List.map string_of_int r2))

let arbitrary_tables = QCheck.make ~print:print_tables gen_tables

(* [ordered = true] compares row lists exactly (the query pins its output
   order); [false] compares multisets (hash probes may legally reorder
   unordered results). *)
let check_ab (run : ?mode:Exec.mode -> string -> Exec.result_set) (sql, ordered)
    =
  let fast = run sql in
  let slow = run ~mode:oracle_mode sql in
  let eq =
    if ordered then fast.Exec.rows = slow.Exec.rows
    else multiset fast = multiset slow
  in
  if not eq then QCheck.Test.fail_reportf "fast/oracle mismatch on: %s" sql

let prop_hash_join_matches_nested_loop =
  QCheck.Test.make ~name:"executor: hash join == nested-loop oracle" ~count:60
    arbitrary_tables
    (fun (rows1, rows2) ->
      let run = ab_fixture rows1 rows2 in
      List.iter (check_ab run)
        [
          ("SELECT t1.a, t2.d FROM t1 JOIN t2 ON t1.b = t2.e", false);
          ( "SELECT t1.a, t2.d FROM t1 JOIN t2 ON t1.b = t2.e WHERE t1.c > 4",
            false );
          ( "SELECT t1.a, t2.d FROM t1 JOIN t2 ON t1.b = t2.e AND t1.c > 2",
            false );
          ( "SELECT t1.a, t2.d, t1.c FROM t1 LEFT JOIN t2 ON t1.b = t2.e \
             ORDER BY t1.a, t2.d",
            true );
          ( "SELECT x.a, y.a FROM t1 x JOIN t1 y ON x.b = y.b WHERE x.a < y.a",
            false );
        ];
      true)

let prop_hash_agg_matches_list_agg =
  QCheck.Test.make
    ~name:"executor: hash aggregation/top-k == sort oracle" ~count:60
    arbitrary_tables
    (fun (rows1, rows2) ->
      let run = ab_fixture rows1 rows2 in
      List.iter (check_ab run)
        [
          ( "SELECT b, COUNT(*), SUM(c) FROM t1 GROUP BY b ORDER BY b",
            true );
          ("SELECT b, MAX(c) FROM t1 GROUP BY b HAVING COUNT(*) > 1", false);
          ("SELECT DISTINCT b FROM t1", false);
          ("SELECT COUNT(*), SUM(c) FROM t1 WHERE b >= 2", true);
          ("SELECT a FROM t1 WHERE b IN (SELECT e FROM t2)", false);
          ("SELECT a, c FROM t1 ORDER BY c, a LIMIT 3", true);
          ("SELECT a FROM t1 WHERE b IN (1, 3, 5)", false);
        ];
      true)

(* Regression: the index probe (including IN-probes) must examine strictly
   fewer versions than a sequential scan of the same data — counted by the
   executor's own [op_visited], the number the §4.3 EO restriction is
   about. *)
let test_index_probe_scans_fewer_rows () =
  let run = ab_fixture [] [] in
  ignore (run "CREATE TABLE big (a INT PRIMARY KEY, b INT, c INT)");
  ignore (run "CREATE TABLE twin (a INT PRIMARY KEY, b INT, c INT)");
  ignore (run "CREATE INDEX big_b ON big (b)");
  for i = 0 to 99 do
    ignore
      (run (Printf.sprintf "INSERT INTO big VALUES (%d, %d, %d)" i (i mod 10) i));
    ignore
      (run (Printf.sprintf "INSERT INTO twin VALUES (%d, %d, %d)" i (i mod 10) i))
  done;
  let visited sql =
    let stats = Exec.new_stats () in
    let rs = run ~mode:{ Exec.default_mode with Exec.stats = Some stats } sql in
    let total =
      List.fold_left (fun acc (_, _, v) -> acc + v) 0 (Exec.visited_counts stats)
    in
    (rs, total)
  in
  let check_pair name probe_sql twin_sql =
    let probe_rs, probe_visited = visited probe_sql in
    let twin_rs, twin_visited = visited twin_sql in
    Alcotest.(check bool)
      (name ^ ": same answer") true
      (multiset probe_rs = multiset twin_rs);
    if probe_visited >= twin_visited then
      Alcotest.failf "%s: index probe visited %d >= seq twin %d" name
        probe_visited twin_visited
  in
  check_pair "eq probe" "SELECT c FROM big WHERE b = 3"
    "SELECT c FROM twin WHERE b = 3";
  check_pair "in probe" "SELECT c FROM big WHERE b IN (1, 4)"
    "SELECT c FROM twin WHERE b IN (1, 4)";
  (* Pushdown accounting on the seq side: the filter runs inside the scan,
     so the scan's produced rows (20) sit well below versions visited (100). *)
  let stats = Exec.new_stats () in
  ignore
    (run
       ~mode:{ Exec.default_mode with Exec.stats = Some stats }
       "SELECT c FROM twin WHERE b IN (1, 4)");
  (match (Exec.scan_counts stats, Exec.visited_counts stats) with
  | [ ("seq_scan", "twin", rows) ], [ ("seq_scan", "twin", visited) ] ->
      Alcotest.(check int) "pushdown rows" 20 rows;
      Alcotest.(check int) "pushdown visited" 100 visited
  | _ -> Alcotest.fail "unexpected operator counters")

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_oe_block_is_serializable;
        QCheck_alcotest.to_alcotest prop_oe_nodes_identical;
        QCheck_alcotest.to_alcotest prop_eo_serializable_with_pre_execution;
        QCheck_alcotest.to_alcotest prop_parallel_equals_serial_oe;
        QCheck_alcotest.to_alcotest prop_parallel_equals_serial_eo;
        QCheck_alcotest.to_alcotest prop_chaos_parallel_validation;
        QCheck_alcotest.to_alcotest prop_prune_preserves_live_state;
        QCheck_alcotest.to_alcotest prop_chaos_schedules_preserve_determinism;
        QCheck_alcotest.to_alcotest prop_bft_converges_with_f_crashed;
        QCheck_alcotest.to_alcotest
          prop_chaos_decisions_agree_even_when_reasons_diverge;
        QCheck_alcotest.to_alcotest prop_hash_join_matches_nested_loop;
        QCheck_alcotest.to_alcotest prop_hash_agg_matches_list_agg;
        Alcotest.test_case "index probe scans fewer rows than seq twin" `Quick
          test_index_probe_scans_fewer_rows;
      ] );
  ]
