(** Peer-level tests: the network wrapper around {!Node_core} — EO
    transaction forwarding, deferred snapshots, block pipelining, and
    checkpoint gossip. *)

module Peer = Brdb_node.Peer
module Node_core = Brdb_node.Node_core
module Msg = Brdb_consensus.Msg
module Block = Brdb_ledger.Block
module Identity = Brdb_crypto.Identity
module Value = Brdb_storage.Value
module Clock = Brdb_sim.Clock
module Rng = Brdb_sim.Rng
module Registry = Brdb_contracts.Registry
module Api = Brdb_contracts.Api

type fx = {
  clock : Clock.t;
  net : Msg.Net.net;
  registry : Identity.Registry.t;
  orderer : Identity.t;
  admin : Identity.t;
  client : Identity.t;
  mutable peers : Peer.t list;
  mutable prev : Block.t option;
  mutable orderer_inbox : Block.tx list;  (** txs the fake orderer received *)
}

let put_contract =
  Registry.Native (fun ctx -> ignore (Api.execute ctx "INSERT INTO kv VALUES ($1, $2)"))

let setup_contract =
  Registry.Native
    (fun ctx -> ignore (Api.execute ctx "CREATE TABLE kv (k INT PRIMARY KEY, v INT)"))

let make_fx ?(flow = Node_core.Execute_order) ?(checkpoint_interval = 1) ?(n = 3)
    ?(inbox_window = 64) ?(snapshot_threshold = 0)
    ?(snapshot_chunk_size = Brdb_snapshot.Chunk.default_size)
    ?(compaction = Brdb_snapshot.Snapshot.Archive) () =
  let clock = Clock.create () in
  let rng = Rng.create ~seed:5 in
  let net = Msg.Net.create ~clock ~rng ~default_link:Brdb_sim.Network.lan_link in
  let registry = Identity.Registry.create () in
  let orderer = Identity.create "orderer/1" in
  let admin = Identity.create "org1/admin" in
  let client = Identity.create "org1/alice" in
  List.iter
    (fun id ->
      match Identity.Registry.register registry id with
      | Ok () -> ()
      | Error _ -> assert false)
    [ orderer; admin; client ];
  let peer_names = List.init n (fun i -> Printf.sprintf "peer-%d" (i + 1)) in
  let fx =
    {
      clock;
      net;
      registry;
      orderer;
      admin;
      client;
      peers = [];
      prev = None;
      orderer_inbox = [];
    }
  in
  (* a fake ordering service endpoint that records submissions *)
  Msg.Net.register net ~name:"orderer-1" (fun ~src:_ msg ->
      match msg with
      | Msg.Client_tx tx -> fx.orderer_inbox <- tx :: fx.orderer_inbox
      | _ -> ());
  let peers =
    List.map
      (fun name ->
        let p =
          Peer.create ~net
            {
              Peer.core =
                Node_core.make_config ~name ~org:"org1" ~flow ~orgs:[ "org1" ] ();
              cost = Brdb_sim.Cost_model.default;
              contract_class_of = (fun _ -> Brdb_sim.Cost_model.Simple);
              orderer_target = "orderer-1";
              peer_names;
              forward_delay_mean = 0.;
              checkpoint_interval;
              fetch_timeout = 0.05;
              (* these tests run the clock until the queue drains, so the
                 perpetual anti-entropy probe must stay off *)
              sync_interval = 0.;
              inbox_window;
              snapshot_threshold;
              snapshot_chunk_size;
              compaction;
            }
            ~registry
        in
        List.iter
          (fun contract_name ->
            Node_core.install_contract (Peer.core p) ~name:contract_name
              (if contract_name = "setup" then setup_contract else put_contract))
          [ "setup"; "put" ];
        p)
      peer_names
  in
  fx.peers <- peers;
  fx

let deliver_block fx txs =
  let height = (match fx.prev with None -> 0 | Some b -> b.Block.height) + 1 in
  let prev_hash = match fx.prev with None -> Block.genesis_hash | Some b -> b.Block.hash in
  let block = Block.sign (Block.create ~height ~txs ~metadata:"t" ~prev_hash) fx.orderer in
  fx.prev <- Some block;
  List.iter
    (fun p ->
      ignore
        (Msg.Net.send fx.net ~src:"orderer-1" ~dst:(Peer.name p)
           ~size_bytes:(Msg.size (Msg.Block_deliver block))
           (Msg.Block_deliver block)))
    fx.peers;
  ignore (Clock.run fx.clock)

let init_chain fx =
  deliver_block fx
    [ Block.make_tx ~id:"setup" ~identity:fx.admin ~contract:"setup" ~args:[] ]

let heights fx = List.map (fun p -> Node_core.height (Peer.core p)) fx.peers

let test_eo_forwarding () =
  let fx = make_fx () in
  init_chain fx;
  (* a client submits to peer 1 only; the peer forwards to the others and
     to the ordering service *)
  let tx =
    Block.make_eo_tx ~identity:fx.client ~contract:"put"
      ~args:[ Value.Int 1; Value.Int 1 ] ~snapshot:1
  in
  ignore
    (Msg.Net.send fx.net ~src:"client/alice" ~dst:"peer-1"
       ~size_bytes:(Msg.size (Msg.Client_tx tx))
       (Msg.Client_tx tx));
  ignore (Clock.run fx.clock);
  Alcotest.(check int) "orderer got it" 1 (List.length fx.orderer_inbox);
  (* all three peers have it pre-executed (pending) *)
  List.iter
    (fun p ->
      Alcotest.(check int) "pre-executed" 1
        (Brdb_txn.Manager.pending_count (Node_core.manager (Peer.core p))))
    fx.peers;
  (* and only ONE copy was forwarded to the orderer (no forwarding loops) *)
  deliver_block fx [ tx ];
  List.iter
    (fun p ->
      Alcotest.(check int) "committed everywhere" 2 (Node_core.height (Peer.core p)))
    fx.peers

let test_eo_deferred_snapshot () =
  let fx = make_fx () in
  init_chain fx;
  (* a transaction pinned at a FUTURE snapshot height arrives early: the
     peer defers execution until it has processed enough blocks (§3.4.1) *)
  let tx =
    Block.make_eo_tx ~identity:fx.client ~contract:"put"
      ~args:[ Value.Int 7; Value.Int 7 ] ~snapshot:2
  in
  ignore
    (Msg.Net.send fx.net ~src:"client/alice" ~dst:"peer-1"
       ~size_bytes:(Msg.size (Msg.Client_tx tx))
       (Msg.Client_tx tx));
  ignore (Clock.run fx.clock);
  let p1 = List.hd fx.peers in
  Alcotest.(check int) "not executing yet" 0
    (Brdb_txn.Manager.pending_count (Node_core.manager (Peer.core p1)));
  (* an unrelated block lifts the height to 2; the deferred tx then runs *)
  deliver_block fx
    [
      Block.make_tx ~id:"filler" ~identity:fx.client ~contract:"put"
        ~args:[ Value.Int 1; Value.Int 1 ];
    ];
  Alcotest.(check int) "executing after catch-up" 1
    (Brdb_txn.Manager.pending_count (Node_core.manager (Peer.core p1)));
  deliver_block fx [ tx ];
  Alcotest.(check (list int)) "all at height 3" [ 3; 3; 3 ] (heights fx)

let test_out_of_order_blocks_buffered () =
  let fx = make_fx ~flow:Node_core.Order_execute () in
  init_chain fx;
  (* build blocks 2 and 3 but deliver 3 first *)
  let mk txs =
    let height = (match fx.prev with None -> 0 | Some b -> b.Block.height) + 1 in
    let prev_hash =
      match fx.prev with None -> Block.genesis_hash | Some b -> b.Block.hash
    in
    let b = Block.sign (Block.create ~height ~txs ~metadata:"t" ~prev_hash) fx.orderer in
    fx.prev <- Some b;
    b
  in
  let b2 =
    mk [ Block.make_tx ~id:"a" ~identity:fx.client ~contract:"put" ~args:[ Value.Int 1; Value.Int 1 ] ]
  in
  let b3 =
    mk [ Block.make_tx ~id:"b" ~identity:fx.client ~contract:"put" ~args:[ Value.Int 2; Value.Int 2 ] ]
  in
  let send b =
    List.iter
      (fun p ->
        ignore
          (Msg.Net.send fx.net ~src:"orderer-1" ~dst:(Peer.name p)
             ~size_bytes:(Msg.size (Msg.Block_deliver b))
             (Msg.Block_deliver b)))
      fx.peers
  in
  send b3;
  ignore (Clock.run fx.clock);
  Alcotest.(check (list int)) "block 3 buffered" [ 1; 1; 1 ] (heights fx);
  send b2;
  ignore (Clock.run fx.clock);
  Alcotest.(check (list int)) "both processed in order" [ 3; 3; 3 ] (heights fx)

let test_checkpoint_gossip () =
  let fx = make_fx ~flow:Node_core.Order_execute () in
  init_chain fx;
  deliver_block fx
    [
      Block.make_tx ~id:"c1" ~identity:fx.client ~contract:"put"
        ~args:[ Value.Int 1; Value.Int 1 ];
    ];
  (* every peer heard every other peer's hash and none diverge *)
  List.iter
    (fun p ->
      let cp = Peer.checkpoints p in
      Alcotest.(check int) "checkpointed" 2
        (Brdb_ledger.Checkpoint.checkpointed_height cp);
      Alcotest.(check (list string)) "no divergence" []
        (Brdb_ledger.Checkpoint.divergent cp ~height:2))
    fx.peers

let test_invalid_block_ignored () =
  let fx = make_fx ~flow:Node_core.Order_execute () in
  init_chain fx;
  (* a byzantine orderer sends an unsigned block: peers must ignore it and
     continue with the legitimate chain *)
  let forged =
    Block.create ~height:2
      ~txs:[ Block.make_tx ~id:"evil" ~identity:fx.client ~contract:"put" ~args:[ Value.Int 6; Value.Int 6 ] ]
      ~metadata:"evil"
      ~prev_hash:(match fx.prev with Some b -> b.Block.hash | None -> Block.genesis_hash)
  in
  List.iter
    (fun p ->
      ignore
        (Msg.Net.send fx.net ~src:"orderer-evil" ~dst:(Peer.name p)
           ~size_bytes:(Msg.size (Msg.Block_deliver forged))
           (Msg.Block_deliver forged)))
    fx.peers;
  ignore (Clock.run fx.clock);
  Alcotest.(check (list int)) "forged block rejected" [ 1; 1; 1 ] (heights fx);
  (* the honest block at the same height still goes through *)
  deliver_block fx
    [
      Block.make_tx ~id:"good" ~identity:fx.client ~contract:"put"
        ~args:[ Value.Int 2; Value.Int 2 ];
    ];
  Alcotest.(check (list int)) "honest chain continues" [ 2; 2; 2 ] (heights fx)

let test_checkpoint_interval () =
  let fx = make_fx ~flow:Node_core.Order_execute ~checkpoint_interval:2 () in
  init_chain fx;
  (* height 1: no checkpoint yet (interval 2) *)
  List.iter
    (fun p ->
      Alcotest.(check int) "none at height 1" 0
        (Brdb_ledger.Checkpoint.checkpointed_height (Peer.checkpoints p)))
    fx.peers;
  deliver_block fx
    [
      Block.make_tx ~id:"x" ~identity:fx.client ~contract:"put"
        ~args:[ Value.Int 1; Value.Int 1 ];
    ];
  (* height 2: checkpoint covering blocks 1-2, identical everywhere *)
  List.iter
    (fun p ->
      let cp = Peer.checkpoints p in
      Alcotest.(check int) "checkpoint at 2" 2
        (Brdb_ledger.Checkpoint.checkpointed_height cp);
      Alcotest.(check (list string)) "no divergence" []
        (Brdb_ledger.Checkpoint.divergent cp ~height:2))
    fx.peers

let test_divergence_detected_via_checkpoints () =
  (* §3.5(3): a node whose local state was tampered with produces a
     different write set for the next block touching that state; the
     checkpoint exchange exposes it to every honest node. *)
  let fx = make_fx ~flow:Node_core.Order_execute () in
  init_chain fx;
  deliver_block fx
    [
      Block.make_tx ~id:"seed" ~identity:fx.client ~contract:"put"
        ~args:[ Value.Int 1; Value.Int 10 ];
    ];
  (* corrupt peer-3's copy of the row *)
  let rogue = List.nth fx.peers 2 in
  (match Brdb_storage.Catalog.find (Node_core.catalog (Peer.core rogue)) "kv" with
  | None -> Alcotest.fail "kv missing"
  | Some table ->
      Brdb_storage.Table.iter_versions table (fun v ->
          if v.Brdb_storage.Version.values.(0) = Value.Int 1 then
            v.Brdb_storage.Version.values.(1) <- Value.Int 666));
  (* install a bump contract and touch the row: the new version copies the
     tampered value, so peer-3's write-set hash differs *)
  List.iter
    (fun p ->
      Node_core.install_contract (Peer.core p) ~name:"bump"
        (Registry.Native
           (fun ctx -> ignore (Api.execute ctx "UPDATE kv SET v = v + 1 WHERE k = $1"))))
    fx.peers;
  deliver_block fx
    [ Block.make_tx ~id:"bump1" ~identity:fx.client ~contract:"bump" ~args:[ Value.Int 1 ] ];
  let honest = List.hd fx.peers in
  Alcotest.(check (list string)) "honest node flags peer-3" [ "peer-3" ]
    (Brdb_ledger.Checkpoint.divergent (Peer.checkpoints honest)
       ~height:(Node_core.height (Peer.core honest)));
  (* ...and the rogue node sees everyone else disagreeing with it *)
  Alcotest.(check (list string)) "rogue sees the majority against it"
    [ "peer-1"; "peer-2" ]
    (List.sort compare
       (Brdb_ledger.Checkpoint.divergent (Peer.checkpoints rogue)
          ~height:(Node_core.height (Peer.core rogue))))

(* --- §3.6 catch-up -------------------------------------------------------- *)

let test_restart_fetches_missed_blocks () =
  let fx = make_fx ~flow:Node_core.Order_execute () in
  init_chain fx;
  let victim = List.nth fx.peers 2 in
  Peer.crash victim;
  (* two blocks go by while the victim is down — nobody re-delivers them *)
  List.iter
    (fun i ->
      deliver_block fx
        [
          Block.make_tx ~id:(Printf.sprintf "m%d" i) ~identity:fx.client
            ~contract:"put"
            ~args:[ Value.Int i; Value.Int i ];
        ])
    [ 1; 2 ];
  Alcotest.(check (list int)) "victim behind" [ 3; 3; 1 ] (heights fx);
  (* messages to the dead node were counted as drops *)
  Alcotest.(check bool) "drops visible" true (Msg.Net.dropped fx.net > 0);
  Peer.restart victim;
  ignore (Clock.run fx.clock);
  Alcotest.(check (list int)) "caught up via fetch" [ 3; 3; 3 ] (heights fx);
  Alcotest.(check int) "both blocks fetched" 2 (Peer.fetched_blocks victim);
  Alcotest.(check bool) "used at least one request" true
    (Peer.fetch_requests victim >= 1)

let test_gap_triggers_fetch () =
  let fx = make_fx ~flow:Node_core.Order_execute () in
  init_chain fx;
  (* block 2 is lost on the way to peer-3 only; block 3 reaches everyone.
     Peer-3 must notice the gap and fetch block 2 from a neighbour. *)
  let mk txs =
    let height = (match fx.prev with None -> 0 | Some b -> b.Block.height) + 1 in
    let prev_hash =
      match fx.prev with None -> Block.genesis_hash | Some b -> b.Block.hash
    in
    let b = Block.sign (Block.create ~height ~txs ~metadata:"t" ~prev_hash) fx.orderer in
    fx.prev <- Some b;
    b
  in
  let send_to p b =
    ignore
      (Msg.Net.send fx.net ~src:"orderer-1" ~dst:(Peer.name p)
         ~size_bytes:(Msg.size (Msg.Block_deliver b))
         (Msg.Block_deliver b))
  in
  let b2 = mk [ Block.make_tx ~id:"g1" ~identity:fx.client ~contract:"put" ~args:[ Value.Int 1; Value.Int 1 ] ] in
  let b3 = mk [ Block.make_tx ~id:"g2" ~identity:fx.client ~contract:"put" ~args:[ Value.Int 2; Value.Int 2 ] ] in
  (match fx.peers with
  | [ p1; p2; p3 ] ->
      send_to p1 b2;
      send_to p2 b2;
      List.iter (fun p -> send_to p b3) [ p1; p2; p3 ]
  | _ -> Alcotest.fail "expected 3 peers");
  ignore (Clock.run fx.clock);
  Alcotest.(check (list int)) "gap closed everywhere" [ 3; 3; 3 ] (heights fx);
  let p3 = List.nth fx.peers 2 in
  Alcotest.(check int) "the missing block was fetched" 1 (Peer.fetched_blocks p3)

let test_inbox_bounded () =
  let window = 8 in
  let fx = make_fx ~flow:Node_core.Order_execute ~inbox_window:window () in
  init_chain fx;
  let p1 = List.hd fx.peers in
  (* flood one peer with far-future heights: only the reorder window may
     be buffered, everything else is dropped (fetch recovers it later) *)
  let flood h =
    let b =
      Block.sign
        (Block.create ~height:h
           ~txs:[ Block.make_tx ~id:(Printf.sprintf "f%d" h) ~identity:fx.client ~contract:"put" ~args:[ Value.Int h; Value.Int h ] ]
           ~metadata:"t" ~prev_hash:"bogus")
        fx.orderer
    in
    ignore
      (Msg.Net.send fx.net ~src:"orderer-1" ~dst:(Peer.name p1)
         ~size_bytes:(Msg.size (Msg.Block_deliver b))
         (Msg.Block_deliver b))
  in
  for h = 3 to 300 do
    flood h
  done;
  ignore (Clock.run fx.clock);
  Alcotest.(check bool)
    (Printf.sprintf "inbox bounded by window (%d)" window)
    true
    (Peer.inbox_size p1 <= window);
  Alcotest.(check int) "nothing processed (gap at 2)" 1
    (Node_core.height (Peer.core p1))

let suites =
  [
    ( "peer",
      [
        Alcotest.test_case "EO forwarding" `Quick test_eo_forwarding;
        Alcotest.test_case "EO deferred snapshot" `Quick test_eo_deferred_snapshot;
        Alcotest.test_case "out-of-order blocks" `Quick test_out_of_order_blocks_buffered;
        Alcotest.test_case "checkpoint gossip" `Quick test_checkpoint_gossip;
        Alcotest.test_case "invalid block ignored" `Quick test_invalid_block_ignored;
        Alcotest.test_case "checkpoint interval" `Quick test_checkpoint_interval;
        Alcotest.test_case "tampered node flagged via checkpoints" `Quick
          test_divergence_detected_via_checkpoints;
        Alcotest.test_case "restart fetches missed blocks" `Quick
          test_restart_fetches_missed_blocks;
        Alcotest.test_case "gap triggers fetch" `Quick test_gap_triggers_fetch;
        Alcotest.test_case "inbox bounded" `Quick test_inbox_bounded;
      ] );
  ]
